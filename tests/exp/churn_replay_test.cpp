// The staggered epoch scheduler is now host::OverlayHost's staggered mode;
// exp::replay_churn is the measurement convention (tail-efficiency
// sampling through epoch-end subscriptions) the churn experiments share.
// These tests pin the combined semantics directly instead of only through
// the figure outputs — in particular, the host-driven replay must walk the
// exact trajectory of the historic hand-rolled staggered loop.
#include "exp/churn_replay.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace egoist::exp {
namespace {

overlay::OverlayConfig small_config(std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.k = 3;
  config.metric = overlay::Metric::kDelayPing;
  config.seed = seed;
  return config;
}

TEST(ChurnReplayTest, DeterministicForFixedInputs) {
  constexpr std::size_t kNodes = 12;
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 300.0;
  churn_config.mean_off_s = 100.0;
  churn_config.initial_on_fraction = 0.75;
  const churn::ChurnTrace trace(kNodes, 6 * 60.0, 5, churn_config);

  ChurnReplayOptions options;
  options.epochs = 6;
  options.warmup_epochs = 2;

  auto run_once = [&] {
    host::OverlayHost host(kNodes, 3);
    const auto overlay = host.deploy(host::OverlaySpec(small_config(9))
                                         .epoch_period(60.0)
                                         .staggered(17)
                                         .churn(trace));
    return replay_churn(host, overlay, options);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.mean_efficiency, b.mean_efficiency);
  EXPECT_EQ(a.total_rewirings, b.total_rewirings);
  EXPECT_GT(a.mean_efficiency, 0.0);
}

TEST(ChurnReplayTest, MatchesHandRolledStaggeredLoop) {
  // The exact loop fig2_churn used before the host existed; the host's
  // staggered driver + subscription sampling must walk the identical
  // trajectory against the engine run directly.
  constexpr std::size_t kNodes = 10;
  constexpr int kEpochs = 5;
  constexpr int kWarmup = 1;
  constexpr std::uint64_t kOrderSeed = 0x0BDEu;
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 200.0;
  churn_config.mean_off_s = 70.0;
  churn_config.initial_on_fraction = 0.8;
  const churn::ChurnTrace trace(kNodes, kEpochs * 60.0, 21, churn_config);

  host::OverlayHost host_a(kNodes, 4);
  const auto overlay_a = host_a.deploy(host::OverlaySpec(small_config(6))
                                           .epoch_period(60.0)
                                           .staggered(kOrderSeed)
                                           .churn(trace));
  ChurnReplayOptions options;
  options.epochs = kEpochs;
  options.warmup_epochs = kWarmup;
  const auto hosted = replay_churn(host_a, overlay_a, options);

  overlay::Environment env_b(kNodes, 4);
  overlay::EgoistNetwork net_b(env_b, small_config(6));
  for (std::size_t v = 0; v < kNodes; ++v) {
    if (!trace.initial_on()[v]) net_b.set_online(static_cast<int>(v), false);
  }
  std::size_t next_event = 0;
  util::OnlineStats efficiency;
  const auto& events = trace.events();
  const double slot = 60.0 / static_cast<double>(kNodes);
  util::Rng order_rng(kOrderSeed);
  for (int e = 0; e < kEpochs; ++e) {
    auto order = net_b.online_nodes();
    order_rng.shuffle(order);
    std::size_t turn = 0;
    for (std::size_t s = 0; s < kNodes; ++s) {
      const double t = e * 60.0 + (s + 1) * slot;
      while (next_event < events.size() && events[next_event].time <= t) {
        net_b.set_online(events[next_event].node, events[next_event].on);
        ++next_event;
      }
      env_b.advance(slot);
      if (turn < order.size() && net_b.online_count() >= 2) {
        if (net_b.is_online(order[turn])) net_b.run_node(order[turn]);
        ++turn;
      }
    }
    if (e < kWarmup || net_b.online_count() < 2) continue;
    for (double eff : net_b.node_efficiencies()) efficiency.add(eff);
  }

  EXPECT_DOUBLE_EQ(hosted.mean_efficiency, efficiency.mean());
  EXPECT_EQ(hosted.total_rewirings, net_b.total_rewirings());
}

TEST(ChurnReplayTest, AppliesInitialStateAndEventsInTimeOrder) {
  constexpr std::size_t kNodes = 6;
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 50.0;
  churn_config.mean_off_s = 50.0;
  const churn::ChurnTrace trace(kNodes, 3 * 60.0, 13, churn_config);

  host::OverlayHost host(kNodes, 2);
  const auto overlay = host.deploy(host::OverlaySpec(small_config(2))
                                       .epoch_period(60.0)
                                       .staggered(1)
                                       .churn(trace));
  ChurnReplayOptions options;
  options.epochs = 3;
  options.warmup_epochs = 0;
  replay_churn(host, overlay, options);

  std::vector<bool> expected = trace.initial_on();
  for (const auto& ev : trace.events()) {
    // The replay applies events with time <= 3 * 60 (all of them).
    expected[static_cast<std::size_t>(ev.node)] = ev.on;
  }
  const auto snapshot = host.snapshot(overlay);
  for (std::size_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(snapshot.is_online(static_cast<int>(v)), expected[v])
        << "node " << v;
  }
}

TEST(ChurnReplayTest, Rejections) {
  host::OverlayHost host(6, 1);
  // A mismatched trace is rejected at deploy time.
  const churn::ChurnTrace mismatched(5, 60.0, 1);
  EXPECT_THROW(host.deploy(host::OverlaySpec(small_config(1))
                               .staggered(1)
                               .churn(mismatched)),
               std::invalid_argument);
  // A non-positive epoch period is rejected at deploy time.
  EXPECT_THROW(host.deploy(host::OverlaySpec(small_config(1)).epoch_period(0.0)),
               std::invalid_argument);
  // Negative epoch counts are rejected by the replay.
  const auto overlay = host.deploy(host::OverlaySpec(small_config(1)).staggered(1));
  ChurnReplayOptions options;
  options.epochs = -1;
  EXPECT_THROW(replay_churn(host, overlay, options), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::exp
