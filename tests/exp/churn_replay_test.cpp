// The staggered epoch scheduler (exp::replay_churn) is the one scheduling
// loop behind the churn experiments (Fig 2, the ablations): one node
// evaluates every T/n seconds with churn events applied in time order in
// between. These tests pin its semantics directly instead of only through
// the figure outputs.
#include "exp/churn_replay.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace egoist::exp {
namespace {

overlay::OverlayConfig small_config(std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.k = 3;
  config.metric = overlay::Metric::kDelayPing;
  config.seed = seed;
  return config;
}

TEST(ChurnReplayTest, DeterministicForFixedInputs) {
  constexpr std::size_t kNodes = 12;
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 300.0;
  churn_config.mean_off_s = 100.0;
  churn_config.initial_on_fraction = 0.75;
  const churn::ChurnTrace trace(kNodes, 6 * 60.0, 5, churn_config);

  ChurnReplayOptions options;
  options.epochs = 6;
  options.warmup_epochs = 2;
  options.order_seed = 17;

  auto run_once = [&] {
    overlay::Environment env(kNodes, 3);
    overlay::EgoistNetwork net(env, small_config(9));
    return replay_churn(env, net, trace, options);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.mean_efficiency, b.mean_efficiency);
  EXPECT_EQ(a.total_rewirings, b.total_rewirings);
  EXPECT_GT(a.mean_efficiency, 0.0);
}

TEST(ChurnReplayTest, MatchesHandRolledStaggeredLoop) {
  // The exact loop fig2_churn used before the extraction; replay_churn must
  // walk the identical trajectory.
  constexpr std::size_t kNodes = 10;
  constexpr int kEpochs = 5;
  constexpr int kWarmup = 1;
  constexpr std::uint64_t kOrderSeed = 0x0BDEu;
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 200.0;
  churn_config.mean_off_s = 70.0;
  churn_config.initial_on_fraction = 0.8;
  const churn::ChurnTrace trace(kNodes, kEpochs * 60.0, 21, churn_config);

  overlay::Environment env_a(kNodes, 4);
  overlay::EgoistNetwork net_a(env_a, small_config(6));
  ChurnReplayOptions options;
  options.epochs = kEpochs;
  options.warmup_epochs = kWarmup;
  options.order_seed = kOrderSeed;
  const auto extracted = replay_churn(env_a, net_a, trace, options);

  overlay::Environment env_b(kNodes, 4);
  overlay::EgoistNetwork net_b(env_b, small_config(6));
  for (std::size_t v = 0; v < kNodes; ++v) {
    if (!trace.initial_on()[v]) net_b.set_online(static_cast<int>(v), false);
  }
  std::size_t next_event = 0;
  util::OnlineStats efficiency;
  const auto& events = trace.events();
  const double slot = 60.0 / static_cast<double>(kNodes);
  util::Rng order_rng(kOrderSeed);
  for (int e = 0; e < kEpochs; ++e) {
    auto order = net_b.online_nodes();
    order_rng.shuffle(order);
    std::size_t turn = 0;
    for (std::size_t s = 0; s < kNodes; ++s) {
      const double t = e * 60.0 + (s + 1) * slot;
      while (next_event < events.size() && events[next_event].time <= t) {
        net_b.set_online(events[next_event].node, events[next_event].on);
        ++next_event;
      }
      env_b.advance(slot);
      if (turn < order.size() && net_b.online_count() >= 2) {
        if (net_b.is_online(order[turn])) net_b.run_node(order[turn]);
        ++turn;
      }
    }
    if (e < kWarmup || net_b.online_count() < 2) continue;
    for (double eff : net_b.node_efficiencies()) efficiency.add(eff);
  }

  EXPECT_DOUBLE_EQ(extracted.mean_efficiency, efficiency.mean());
  EXPECT_EQ(extracted.total_rewirings, net_b.total_rewirings());
}

TEST(ChurnReplayTest, AppliesInitialStateAndEventsInTimeOrder) {
  // A hand-built trace: node 0 leaves mid-epoch 0, node 1 rejoins in epoch 1.
  constexpr std::size_t kNodes = 6;
  overlay::Environment env(kNodes, 2);
  overlay::EgoistNetwork net(env, small_config(2));

  // Build a trace via the synthesizer, then check replay leaves the overlay
  // in the state the event sequence dictates.
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 50.0;
  churn_config.mean_off_s = 50.0;
  const churn::ChurnTrace trace(kNodes, 3 * 60.0, 13, churn_config);
  ChurnReplayOptions options;
  options.epochs = 3;
  options.warmup_epochs = 0;
  options.order_seed = 1;
  replay_churn(env, net, trace, options);

  std::vector<bool> expected = trace.initial_on();
  for (const auto& ev : trace.events()) {
    // replay_churn applies events with time <= 3 * 60 (all of them).
    expected[static_cast<std::size_t>(ev.node)] = ev.on;
  }
  for (std::size_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(net.is_online(static_cast<int>(v)), expected[v]) << "node " << v;
  }
}

TEST(ChurnReplayTest, Rejections) {
  overlay::Environment env(6, 1);
  overlay::EgoistNetwork net(env, small_config(1));
  const churn::ChurnTrace mismatched(5, 60.0, 1);
  ChurnReplayOptions options;
  EXPECT_THROW(replay_churn(env, net, mismatched, options),
               std::invalid_argument);
  const churn::ChurnTrace ok(6, 60.0, 1);
  options.epochs = -1;
  EXPECT_THROW(replay_churn(env, net, ok, options), std::invalid_argument);
  options.epochs = 1;
  options.epoch_seconds = 0.0;
  EXPECT_THROW(replay_churn(env, net, ok, options), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::exp
