#include "exp/result_sink.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace egoist::exp {
namespace {

util::Table sample_table() {
  util::Table t({"k", "cost"});
  t.add_numeric_row({2.0, 1.25}, 2);
  t.add_numeric_row({3.0, 0.75}, 2);
  return t;
}

TEST(ConsoleSinkTest, MatchesLegacyFigureFormat) {
  std::ostringstream os;
  ConsoleSink sink(os);
  sink.begin_scenario("s", "e", {{"n", "50"}});
  sink.section("Fig X", "A caption.");
  sink.table("panel", sample_table());
  sink.text("\nfootnote\n");
  EXPECT_EQ(os.str(),
            "=== Fig X ===\nA caption.\n\n"
            "   k  cost\n"
            "----------\n"
            "2.00  1.25\n"
            "3.00  0.75\n"
            "\nfootnote\n");
}

TEST(JsonLinesSinkTest, SchemaAndEscaping) {
  std::ostringstream os;
  JsonLinesSink sink(os);
  sink.begin_scenario("s[n=1]", "steady_state", {{"n", "1"}, {"note", "a\"b"}});
  sink.section("T", "line1\nline2");
  sink.table("panel", sample_table());
  sink.text("ignored by structured sinks");
  const std::string out = os.str();
  EXPECT_EQ(out,
            "{\"type\":\"scenario\",\"scenario\":\"s[n=1]\","
            "\"experiment\":\"steady_state\","
            "\"params\":{\"n\":\"1\",\"note\":\"a\\\"b\"}}\n"
            "{\"type\":\"section\",\"scenario\":\"s[n=1]\",\"title\":\"T\","
            "\"caption\":\"line1\\nline2\"}\n"
            "{\"type\":\"row\",\"scenario\":\"s[n=1]\",\"panel\":\"panel\","
            "\"columns\":[\"k\",\"cost\"],\"cells\":[\"2.00\",\"1.25\"]}\n"
            "{\"type\":\"row\",\"scenario\":\"s[n=1]\",\"panel\":\"panel\","
            "\"columns\":[\"k\",\"cost\"],\"cells\":[\"3.00\",\"0.75\"]}\n");
}

TEST(BufferSinkTest, ReplayPreservesEventOrderAndContent) {
  BufferSink buffer;
  buffer.begin_scenario("s", "e", {{"n", "5"}});
  buffer.section("T", "C");
  buffer.table("p", sample_table());
  buffer.row("p", {"a"}, {"1"});
  buffer.text("tail\n");
  buffer.end_scenario();

  std::ostringstream direct_os, replay_os;
  {
    ConsoleSink direct(direct_os);
    direct.begin_scenario("s", "e", {{"n", "5"}});
    direct.section("T", "C");
    direct.table("p", sample_table());
    direct.row("p", {"a"}, {"1"});
    direct.text("tail\n");
    direct.end_scenario();
  }
  ConsoleSink replayed(replay_os);
  buffer.replay(replayed);
  EXPECT_EQ(replay_os.str(), direct_os.str());

  // The same holds for the structured sink (rows included).
  std::ostringstream direct_json, replay_json;
  {
    JsonLinesSink direct(direct_json);
    direct.begin_scenario("s", "e", {{"n", "5"}});
    direct.section("T", "C");
    direct.table("p", sample_table());
    direct.row("p", {"a"}, {"1"});
    direct.text("tail\n");
    direct.end_scenario();
  }
  JsonLinesSink replayed_json(replay_json);
  buffer.replay(replayed_json);
  EXPECT_EQ(replay_json.str(), direct_json.str());
}

TEST(TeeSinkTest, FansOutToAllSinks) {
  std::ostringstream console_os, json_os;
  ConsoleSink console(console_os);
  JsonLinesSink json(json_os);
  TeeSink tee({&console, &json});
  tee.begin_scenario("s", "e", {});
  tee.section("T", "C");
  tee.table("p", sample_table());
  EXPECT_NE(console_os.str().find("=== T ==="), std::string::npos);
  EXPECT_NE(json_os.str().find("\"type\":\"row\""), std::string::npos);
}

}  // namespace
}  // namespace egoist::exp
