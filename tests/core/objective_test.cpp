#include "core/objective.hpp"

#include <gtest/gtest.h>

#include "graph/shortest_path.hpp"

namespace egoist::core {
namespace {

// Hand-built scenario: self = 0, others {1, 2, 3}.
// direct costs: 0->1 = 1, 0->2 = 10, 0->3 = 4.
// residual distances (rows = candidate, cols = destination):
//   1 -> 2: 2, 1 -> 3: 7
//   2 -> 1: 2, 2 -> 3: 1
//   3 -> 1: 6, 3 -> 2: 1
DelayObjective make_fixture(double penalty = 1000.0) {
  const double inf = graph::kUnreachable;
  std::vector<std::vector<double>> resid{
      {0, inf, inf, inf},
      {inf, 0, 2, 7},
      {inf, 2, 0, 1},
      {inf, 6, 1, 0},
  };
  return DelayObjective(0, {1, 2, 3}, {0, 1, 10, 4}, resid,
                        {0, 1.0 / 3, 1.0 / 3, 1.0 / 3}, {1, 2, 3}, penalty);
}

TEST(DelayObjectiveTest, SingleNeighborCost) {
  const auto obj = make_fixture();
  // Wiring {1}: d(0,1)=1, d(0,2)=1+2=3, d(0,3)=1+7=8 -> mean = 4.
  const std::vector<NodeId> w{1};
  EXPECT_NEAR(obj.cost(w), (1.0 + 3.0 + 8.0) / 3.0, 1e-12);
}

TEST(DelayObjectiveTest, TwoNeighborsTakeMinimumPerTarget) {
  const auto obj = make_fixture();
  // Wiring {1,3}: d(0,1)=1, d(0,2)=min(1+2, 4+1)=3, d(0,3)=min(1+7, 4)=4.
  const std::vector<NodeId> w{1, 3};
  EXPECT_NEAR(obj.cost(w), (1.0 + 3.0 + 4.0) / 3.0, 1e-12);
}

TEST(DelayObjectiveTest, DirectLinkToTargetCounts) {
  const auto obj = make_fixture();
  const std::vector<NodeId> w{2};
  // d(0,2) = direct 10 (not residual), d(0,1) = 10+2, d(0,3) = 10+1.
  EXPECT_NEAR(obj.cost(w), (12.0 + 10.0 + 11.0) / 3.0, 1e-12);
}

TEST(DelayObjectiveTest, EmptyWiringPaysPenaltyEverywhere) {
  const auto obj = make_fixture(500.0);
  EXPECT_NEAR(obj.cost(std::vector<NodeId>{}), 500.0, 1e-12);
}

TEST(DelayObjectiveTest, DistanceToReportsUnreachable) {
  const double inf = graph::kUnreachable;
  std::vector<std::vector<double>> resid{
      {0, inf, inf}, {inf, 0, inf}, {inf, inf, 0}};
  DelayObjective obj(0, {1, 2}, {0, 1, 1}, resid, {0, 0.5, 0.5}, {1, 2}, 99.0);
  const std::vector<NodeId> w{1};
  EXPECT_DOUBLE_EQ(obj.distance_to(w, 1), 1.0);
  EXPECT_EQ(obj.distance_to(w, 2), inf);
  EXPECT_NEAR(obj.cost(w), 0.5 * 1.0 + 0.5 * 99.0, 1e-12);
}

TEST(DelayObjectiveTest, PreferenceSkewsCost) {
  const double inf = graph::kUnreachable;
  std::vector<std::vector<double>> resid{
      {0, inf, inf}, {inf, 0, 5}, {inf, 5, 0}};
  // Nearly all preference on node 2.
  DelayObjective obj(0, {1, 2}, {0, 1, 10}, resid, {0, 0.01, 0.99}, {1, 2}, 1e6);
  const std::vector<NodeId> via1{1};  // d(0,2) = 6
  const std::vector<NodeId> via2{2};  // d(0,2) = 10 direct
  // via1: 0.01*1 + 0.99*6 = 5.95; via2: 0.01*15 + 0.99*10 = 10.05.
  EXPECT_LT(obj.cost(via1), obj.cost(via2));
}

TEST(DelayObjectiveTest, ValidationErrors) {
  const double inf = graph::kUnreachable;
  std::vector<std::vector<double>> resid{{0, inf}, {inf, 0}};
  EXPECT_THROW(DelayObjective(0, {0}, {0, 1}, resid, {0, 1}, {1}, 1.0),
               std::invalid_argument);  // self as candidate
  EXPECT_THROW(DelayObjective(0, {1}, {0}, resid, {0, 1}, {1}, 1.0),
               std::invalid_argument);  // direct size
  EXPECT_THROW(DelayObjective(0, {1}, {0, 1}, resid, {0}, {1}, 1.0),
               std::invalid_argument);  // pref size
  EXPECT_THROW(DelayObjective(0, {1}, {0, 1}, resid, {0, 1}, {1}, -1.0),
               std::invalid_argument);  // negative penalty
  EXPECT_THROW(DelayObjective(0, {5}, {0, 1}, resid, {0, 1}, {1}, 1.0),
               std::out_of_range);  // candidate range
}

TEST(DelayObjectiveTest, UnmeasuredDirectLegClampsToUnreachable) {
  // Regression: an unmeasured direct cost (kUnreachable) combined with a
  // finite residual distance must clamp to kUnreachable — never a sum that
  // escapes the sentinel checks in fold()/distance_to() and corrupts the
  // min-fold with a garbage "reachable" value.
  const double inf = graph::kUnreachable;
  std::vector<std::vector<double>> resid{
      {0, inf, inf}, {inf, 0, 3}, {inf, 5, 0}};
  DelayObjective obj(0, {1, 2}, {0, inf, 2}, resid, {0, 0.5, 0.5}, {1, 2},
                     100.0);
  // Candidate 1's direct link was never measured: both legs through 1 are
  // unreachable, even though 1 -> 2 has a finite residual distance.
  EXPECT_EQ(obj.link_value(1, 2), inf);
  EXPECT_EQ(obj.link_value(1, 1), inf);  // v == j returns the direct leg
  // The min-fold over wiring {1, 2} must pick 2's finite path, and wiring
  // {1} alone must pay the penalty on every target.
  const std::vector<NodeId> both{1, 2};
  EXPECT_DOUBLE_EQ(obj.distance_to(both, 2), 2.0);
  EXPECT_NEAR(obj.cost(std::vector<NodeId>{1}), 100.0, 1e-12);
}

TEST(DelayObjectiveTest, BulkFillMatchesLinkValue) {
  const double inf = graph::kUnreachable;
  std::vector<std::vector<double>> resid{
      {0, inf, inf, inf},
      {inf, 0, 2, 7},
      {inf, 2, 0, inf},
      {inf, 6, 1, 0},
  };
  DelayObjective obj(0, {1, 2, 3}, {0, 1, inf, 4}, resid,
                     {0, 1.0 / 3, 1.0 / 3, 1.0 / 3}, {1, 2, 3}, 1000.0);
  const std::vector<NodeId> sources{1, 2, 3};
  const std::vector<NodeId> targets{1, 2, 3};
  std::vector<double> bulk(sources.size() * targets.size());
  obj.fill_link_values(sources, targets, bulk);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    for (std::size_t t = 0; t < targets.size(); ++t) {
      EXPECT_EQ(bulk[s * targets.size() + t],
                obj.link_value(sources[s], targets[t]))
          << sources[s] << " -> " << targets[t];
    }
  }
  std::vector<double> wrong(2);
  EXPECT_THROW(obj.fill_link_values(sources, targets, wrong),
               std::invalid_argument);
}

// Bandwidth fixture: self=0, candidates {1,2}; direct bw 0->1=10, 0->2=3.
// residual bottlenecks: 1->2 = 8, 2->1 = 2.
BandwidthObjective make_bw_fixture() {
  std::vector<std::vector<double>> resid{
      {0, 0, 0}, {0, 0, 8}, {0, 2, 0}};
  return BandwidthObjective(0, {1, 2}, {0, 10, 3}, resid, {1, 2});
}

TEST(BandwidthObjectiveTest, SumsBestBottlenecks) {
  const auto obj = make_bw_fixture();
  // Wiring {1}: bw(0,1)=10, bw(0,2)=min(10,8)=8 -> score 18.
  const std::vector<NodeId> w{1};
  EXPECT_NEAR(obj.score(w), 18.0, 1e-12);
  EXPECT_NEAR(obj.cost(w), -18.0, 1e-12);
}

TEST(BandwidthObjectiveTest, TwoNeighborsTakeMaxPerTarget) {
  const auto obj = make_bw_fixture();
  // Wiring {1,2}: bw(0,1)=max(10, min(3,2))=10, bw(0,2)=max(8, 3)=8.
  const std::vector<NodeId> w{1, 2};
  EXPECT_NEAR(obj.score(w), 18.0, 1e-12);
}

TEST(BandwidthObjectiveTest, UnreachableContributesZero) {
  std::vector<std::vector<double>> resid{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  BandwidthObjective obj(0, {1, 2}, {0, 5, 0}, resid, {1, 2});
  const std::vector<NodeId> w{1};
  EXPECT_NEAR(obj.score(w), 5.0, 1e-12);  // only the direct link to 1
}

TEST(BandwidthObjectiveTest, EmptyWiringScoresZero) {
  const auto obj = make_bw_fixture();
  EXPECT_DOUBLE_EQ(obj.score(std::vector<NodeId>{}), 0.0);
}

TEST(BandwidthObjectiveTest, BulkFillMatchesLinkValue) {
  const auto obj = make_bw_fixture();
  const std::vector<NodeId> sources{1, 2};
  const std::vector<NodeId> targets{1, 2};
  std::vector<double> bulk(4);
  obj.fill_link_values(sources, targets, bulk);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t t = 0; t < 2; ++t) {
      EXPECT_EQ(bulk[s * 2 + t], obj.link_value(sources[s], targets[t]));
    }
  }
}

}  // namespace
}  // namespace egoist::core
