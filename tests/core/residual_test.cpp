#include "core/residual.hpp"

#include <gtest/gtest.h>

#include "core/policies.hpp"
#include "graph/shortest_path.hpp"
#include "net/delay_space.hpp"

namespace egoist::core {
namespace {

TEST(ResidualTest, SelfOutEdgesAreIgnored) {
  // 0 -> 1 -> 2 chain plus 0 -> 2 shortcut. The residual graph for node 0
  // must exclude 0's own out-edges, so 1's distance to 2 stays 5.
  graph::Digraph overlay(3);
  overlay.set_edge(0, 1, 1.0);
  overlay.set_edge(0, 2, 1.0);
  overlay.set_edge(1, 2, 5.0);
  overlay.set_edge(2, 1, 5.0);

  const std::vector<double> direct{0.0, 1.0, 100.0};
  const auto obj = make_delay_objective(overlay, 0, direct);
  // With wiring {1}: d(0,2) must be 1 + 5 (through residual), never
  // 1 + (1->0->2) which would use 0's own edges.
  const std::vector<NodeId> w{1};
  EXPECT_NEAR(obj.distance_to(w, 2), 6.0, 1e-12);
}

TEST(ResidualTest, UniformPreferenceAveragesTargets) {
  graph::Digraph overlay(4);
  overlay.set_edge(1, 2, 1.0);
  overlay.set_edge(2, 3, 1.0);
  overlay.set_edge(3, 1, 1.0);
  const std::vector<double> direct{0.0, 2.0, 2.0, 2.0};
  const auto obj = make_delay_objective(overlay, 0, direct);
  // Wiring {1}: d=2, 3, 4 to targets 1,2,3 -> mean 3.
  const std::vector<NodeId> w{1};
  EXPECT_NEAR(obj.cost(w), 3.0, 1e-12);
}

TEST(ResidualTest, ExplicitPreferenceUsed) {
  graph::Digraph overlay(3);
  overlay.set_edge(1, 2, 1.0);
  overlay.set_edge(2, 1, 1.0);
  const std::vector<double> direct{0.0, 1.0, 7.0};
  std::vector<double> pref{0.0, 1.0, 0.0};  // only node 1 matters
  const auto obj = make_delay_objective(overlay, 0, direct, pref);
  const std::vector<NodeId> w1{1};
  const std::vector<NodeId> w2{2};
  EXPECT_NEAR(obj.cost(w1), 1.0, 1e-12);
  EXPECT_NEAR(obj.cost(w2), 8.0, 1e-12);
}

TEST(ResidualTest, InactiveNodesExcludedFromCandidatesAndTargets) {
  graph::Digraph overlay(4);
  overlay.set_edge(1, 2, 1.0);
  overlay.set_edge(2, 1, 1.0);
  overlay.set_active(3, false);
  const std::vector<double> direct{0.0, 1.0, 1.0, 1.0};
  const auto obj = make_delay_objective(overlay, 0, direct);
  EXPECT_EQ(obj.candidates(), (std::vector<NodeId>{1, 2}));
}

TEST(ResidualTest, InactiveSelfRejected) {
  graph::Digraph overlay(3);
  overlay.set_active(0, false);
  const std::vector<double> direct{0.0, 1.0, 1.0};
  EXPECT_THROW(make_delay_objective(overlay, 0, direct), std::invalid_argument);
}

TEST(ResidualTest, DefaultPenaltyDominatesPathCosts) {
  graph::Digraph overlay(3);
  overlay.set_edge(1, 2, 40.0);
  EXPECT_GT(default_unreachable_penalty(overlay), 40.0 * 100.0);
}

TEST(ResidualBandwidthTest, UsesWidestPathResiduals) {
  // 1 -> 2 with bw 8; 2 -> 1 with bw 2. Self = 0.
  graph::Digraph overlay(3);
  overlay.set_edge(1, 2, 8.0);
  overlay.set_edge(2, 1, 2.0);
  const std::vector<double> direct_bw{0.0, 10.0, 3.0};
  const auto obj = make_bandwidth_objective(overlay, 0, direct_bw);
  const std::vector<NodeId> w{1};
  // bw(0,1) = 10 direct; bw(0,2) = min(10, 8) = 8 -> score 18.
  EXPECT_NEAR(obj.score(w), 18.0, 1e-12);
}

TEST(ResidualBandwidthTest, SelfEdgesIgnoredInResidual) {
  graph::Digraph overlay(3);
  overlay.set_edge(0, 2, 100.0);  // self's own edge must not help candidates
  overlay.set_edge(1, 0, 50.0);
  const std::vector<double> direct_bw{0.0, 10.0, 1.0};
  const auto obj = make_bandwidth_objective(overlay, 0, direct_bw);
  const std::vector<NodeId> w{1};
  // 1 can reach 0 (bw 50) but NOT 2, because 0->2 is self's edge.
  EXPECT_NEAR(obj.bandwidth_to(w, 2), 0.0, 1e-12);
}

TEST(SampledObjectiveTest, RestrictsToSample) {
  graph::Digraph overlay(5);
  for (NodeId u = 1; u < 5; ++u) {
    for (NodeId v = 1; v < 5; ++v) {
      if (u != v) overlay.set_edge(u, v, 1.0);
    }
  }
  const std::vector<double> direct{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<NodeId> sample{1, 3};
  const auto obj = make_sampled_delay_objective(overlay, 0, direct, sample);
  EXPECT_EQ(obj.candidates(), sample);
  // Cost over sample targets only: wiring {1} -> d(0,1)=1, d(0,3)=1+1=2.
  const std::vector<NodeId> w{1};
  EXPECT_NEAR(obj.cost(w), (1.0 + 2.0) / 2.0, 1e-12);
}

TEST(SampledObjectiveTest, SampleMayNotContainSelf) {
  graph::Digraph overlay(3);
  const std::vector<double> direct{0.0, 1.0, 1.0};
  EXPECT_THROW(make_sampled_delay_objective(overlay, 0, direct, {0, 1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine-backed builders must match the legacy (residual-copy) builders
// cost-for-cost on the same overlay snapshot.

TEST(EngineBuilderTest, DelayObjectiveMatchesLegacy) {
  graph::Digraph overlay(4);
  overlay.set_edge(0, 1, 1.0);  // self's edge: excluded by both paths
  overlay.set_edge(1, 2, 2.0);
  overlay.set_edge(2, 3, 1.0);
  overlay.set_edge(3, 1, 4.0);
  const std::vector<double> direct{0.0, 1.0, 9.0, 2.5};
  graph::PathEngine engine(overlay);
  const auto legacy = make_delay_objective(overlay, 0, direct);
  const auto hot = make_delay_objective(engine, 0, direct);
  EXPECT_EQ(hot.candidates(), legacy.candidates());
  EXPECT_EQ(hot.targets(), legacy.targets());
  for (const std::vector<NodeId>& w :
       {std::vector<NodeId>{1}, {3}, {1, 3}, {1, 2, 3}}) {
    EXPECT_EQ(hot.cost(w), legacy.cost(w));
  }
  for (NodeId v : hot.candidates()) {
    for (NodeId j : hot.targets()) {
      EXPECT_EQ(hot.link_value(v, j), legacy.link_value(v, j));
    }
  }
}

TEST(EngineBuilderTest, BandwidthObjectiveMatchesLegacy) {
  graph::Digraph overlay(4);
  overlay.set_edge(1, 2, 8.0);
  overlay.set_edge(2, 3, 6.0);
  overlay.set_edge(3, 1, 2.0);
  overlay.set_edge(0, 3, 100.0);  // self's edge: must not help candidates
  const std::vector<double> direct_bw{0.0, 10.0, 3.0, 1.0};
  graph::PathEngine engine(overlay);
  const auto legacy = make_bandwidth_objective(overlay, 0, direct_bw);
  const auto hot = make_bandwidth_objective(engine, 0, direct_bw);
  for (const std::vector<NodeId>& w :
       {std::vector<NodeId>{1}, {2}, {1, 3}, {1, 2, 3}}) {
    EXPECT_EQ(hot.score(w), legacy.score(w));
  }
}

TEST(EngineBuilderTest, SampledObjectiveMatchesLegacy) {
  graph::Digraph overlay(6);
  for (NodeId u = 1; u < 6; ++u) {
    overlay.set_edge(u, (u % 5) + 1, 1.0 + u);  // ring 1 -> 2 -> ... -> 5 -> 1
  }
  overlay.set_active(4, false);  // churned-out sampled node
  const std::vector<double> direct{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<NodeId> sample{1, 3, 4};
  graph::PathEngine engine(overlay);
  const auto legacy = make_sampled_delay_objective(overlay, 0, direct, sample);
  const auto hot = make_sampled_delay_objective(engine, 0, direct, sample);
  EXPECT_EQ(hot.candidates(), legacy.candidates());
  for (const std::vector<NodeId>& w : {std::vector<NodeId>{1}, {3}, {1, 3}}) {
    EXPECT_EQ(hot.cost(w), legacy.cost(w));
  }
  EXPECT_THROW(make_sampled_delay_objective(engine, 0, direct, {0, 1}),
               std::invalid_argument);
}

TEST(EngineBuilderTest, DefaultPenaltyMatchesLegacyUnderChurn) {
  // Regression: a churned node holding the heaviest edge must not make the
  // engine path default to a different "M >> n" penalty than the legacy
  // path — otherwise unreachable targets fold to different costs and the
  // two builders stop being drop-in equivalents.
  graph::Digraph overlay(4);
  overlay.set_edge(1, 2, 2.0);
  overlay.set_edge(2, 3, 1.0);
  overlay.set_edge(3, 1, 50.0);
  overlay.set_active(3, false);
  graph::PathEngine engine(overlay);
  EXPECT_EQ(default_unreachable_penalty(engine.csr()),
            default_unreachable_penalty(overlay));
  const std::vector<double> direct{0.0, 1.0, 9.0, 3.0};
  const auto legacy = make_delay_objective(overlay, 0, direct);
  const auto hot = make_delay_objective(engine, 0, direct);
  // Node 2 cannot reach node 1 (its only outgoing edge led to churned 3),
  // so wiring {2} pays the penalty on target 1 — it must match exactly.
  const std::vector<NodeId> w{2};
  EXPECT_EQ(hot.cost(w), legacy.cost(w));
}

TEST(EngineBuilderTest, InactiveSelfRejected) {
  graph::Digraph overlay(3);
  overlay.set_active(0, false);
  graph::PathEngine engine(overlay);
  const std::vector<double> direct{0.0, 1.0, 1.0};
  EXPECT_THROW(make_delay_objective(engine, 0, direct), std::invalid_argument);
  EXPECT_THROW(make_bandwidth_objective(engine, 0, direct),
               std::invalid_argument);
}

TEST(ResidualIntegrationTest, BrImprovesOverArbitraryWiring) {
  const std::size_t n = 25;
  const auto delays = net::make_planetlab_like(n, 77);
  graph::Digraph overlay(n);
  util::Rng rng(78);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      if (v != u) candidates.push_back(v);
    }
    for (NodeId v : select_k_random(candidates, 3, rng)) {
      overlay.set_edge(u, v, delays.delay(u, v));
    }
  }
  std::vector<double> direct(n);
  for (int v = 1; v < static_cast<int>(n); ++v) {
    direct[static_cast<std::size_t>(v)] = delays.delay(0, v);
  }
  const auto obj = make_delay_objective(overlay, 0, direct);
  const auto br = best_response(obj, 3);
  // BR must be at least as good as node 0's current (random) wiring.
  std::vector<NodeId> current;
  for (const auto& e : overlay.out_edges(0)) current.push_back(e.to);
  EXPECT_LE(br.cost, obj.cost(current) + 1e-9);
}

}  // namespace
}  // namespace egoist::core
