#include "core/sampling.hpp"

#include <gtest/gtest.h>

#include <set>

namespace egoist::core {
namespace {

TEST(RandomSampleTest, SizeAndMembership) {
  util::Rng rng(5);
  const std::vector<NodeId> candidates{1, 2, 3, 4, 5, 6, 7, 8};
  const auto s = random_sample(candidates, 3, rng);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  for (NodeId v : s) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), v), candidates.end());
  }
}

TEST(RandomSampleTest, CappedAtPoolSize) {
  util::Rng rng(7);
  EXPECT_EQ(random_sample({4, 9}, 10, rng), (std::vector<NodeId>{4, 9}));
}

// Star fixture: node 1 has a big 1-hop neighborhood, node 2 a small one.
graph::Digraph star_fixture() {
  graph::Digraph g(8);
  // 1 -> {3,4,5,6}; 2 -> {7}.
  for (NodeId v : {3, 4, 5, 6}) g.set_edge(1, v, 1.0);
  g.set_edge(2, 7, 1.0);
  return g;
}

TEST(BiasedRankTest, LargerNeighborhoodRanksHigher) {
  const auto g = star_fixture();
  // All direct costs equal: the neighborhood size should dominate.
  const std::vector<double> direct(8, 10.0);
  const double r1 = biased_rank(g, 0, 1, direct, 1);
  const double r2 = biased_rank(g, 0, 2, direct, 1);
  // b_01 = 4 / 40 = 0.1; b_02 = 1 / 10 = 0.1 -> equal per-member value;
  // with radius 2 nothing changes here, so test a truly dominant case:
  EXPECT_DOUBLE_EQ(r1, 4.0 / 40.0);
  EXPECT_DOUBLE_EQ(r2, 1.0 / 10.0);
}

TEST(BiasedRankTest, CloserNeighborhoodsRankHigher) {
  const auto g = star_fixture();
  // Nodes behind 1 are close to the newcomer; node 7 (behind 2) is far.
  std::vector<double> direct(8, 0.0);
  direct[3] = direct[4] = direct[5] = direct[6] = 5.0;
  direct[7] = 100.0;
  EXPECT_GT(biased_rank(g, 0, 1, direct, 1), biased_rank(g, 0, 2, direct, 1));
}

TEST(BiasedRankTest, EmptyNeighborhoodRanksZero) {
  const auto g = star_fixture();
  const std::vector<double> direct(8, 1.0);
  EXPECT_DOUBLE_EQ(biased_rank(g, 0, 5, direct, 1), 0.0);  // leaf node
}

TEST(BiasedRankTest, RadiusExpandsNeighborhood) {
  graph::Digraph g(4);
  g.set_edge(1, 2, 1.0);
  g.set_edge(2, 3, 1.0);
  const std::vector<double> direct(4, 2.0);
  // radius 1: F(1) = {2}; radius 2: F(1) = {2, 3}.
  EXPECT_DOUBLE_EQ(biased_rank(g, 0, 1, direct, 1), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(biased_rank(g, 0, 1, direct, 2), 2.0 / 4.0);
}

TEST(TopologyBiasedSampleTest, PrefersHighRankNodes) {
  // Candidates: 1 (hub) and several leaves; with m=1 and full oversampling
  // the hub must always be chosen.
  const auto g = star_fixture();
  std::vector<double> direct(8, 10.0);
  direct[7] = 1000.0;  // make 2's neighborhood unattractive
  const std::vector<NodeId> candidates{1, 2, 3, 4, 5};
  util::Rng rng(9);
  BiasedSamplingOptions options;
  options.oversample = 10.0;  // m' covers the whole pool
  const auto s = topology_biased_sample(g, 0, direct, candidates, 1, rng, options);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 1);
}

TEST(TopologyBiasedSampleTest, ReturnsRequestedSize) {
  const auto g = star_fixture();
  const std::vector<double> direct(8, 1.0);
  const std::vector<NodeId> candidates{1, 2, 3, 4, 5, 6, 7};
  util::Rng rng(11);
  const auto s = topology_biased_sample(g, 0, direct, candidates, 4, rng);
  EXPECT_EQ(s.size(), 4u);
  const std::set<NodeId> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(TopologyBiasedSampleTest, CsrOverloadMatchesDigraph) {
  // Same graph, same rng seed: the CSR-snapshot sampler must rank and pick
  // identically to the adjacency-list reference, including churned nodes.
  const auto g = star_fixture();
  graph::Digraph churned = g;
  churned.set_active(6, false);
  const graph::CsrGraph csr(churned);
  std::vector<double> direct(8, 1.0);
  direct[3] = 0.25;
  const std::vector<NodeId> candidates{1, 2, 3, 4, 5, 7};
  for (NodeId v : candidates) {
    EXPECT_EQ(biased_rank(csr, 0, v, direct, 2),
              biased_rank(churned, 0, v, direct, 2))
        << "rank of " << v;
  }
  util::Rng rng_a(17);
  util::Rng rng_b(17);
  const auto via_digraph =
      topology_biased_sample(churned, 0, direct, candidates, 3, rng_a);
  const auto via_csr =
      topology_biased_sample(csr, 0, direct, candidates, 3, rng_b);
  EXPECT_EQ(via_csr, via_digraph);
}

TEST(TopologyBiasedSampleTest, Rejections) {
  const auto g = star_fixture();
  const std::vector<double> direct(8, 1.0);
  util::Rng rng(1);
  BiasedSamplingOptions bad_radius;
  bad_radius.radius = -1;
  EXPECT_THROW(
      topology_biased_sample(g, 0, direct, {1, 2}, 1, rng, bad_radius),
      std::invalid_argument);
  BiasedSamplingOptions bad_oversample;
  bad_oversample.oversample = 0.5;
  EXPECT_THROW(
      topology_biased_sample(g, 0, direct, {1, 2}, 1, rng, bad_oversample),
      std::invalid_argument);
}

}  // namespace
}  // namespace egoist::core
