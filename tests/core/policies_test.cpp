#include "core/policies.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/residual.hpp"
#include "net/delay_space.hpp"

namespace egoist::core {
namespace {

TEST(KRandomTest, SizeAndDistinctness) {
  util::Rng rng(3);
  const std::vector<NodeId> candidates{1, 2, 3, 4, 5, 6, 7};
  const auto w = select_k_random(candidates, 4, rng);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
  const std::set<NodeId> unique(w.begin(), w.end());
  EXPECT_EQ(unique.size(), 4u);
  for (NodeId v : w) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), v), candidates.end());
  }
}

TEST(KRandomTest, TakesAllWhenKExceedsPool) {
  util::Rng rng(5);
  const auto w = select_k_random({1, 2}, 10, rng);
  EXPECT_EQ(w, (std::vector<NodeId>{1, 2}));
}

TEST(KClosestTest, PicksMinimumCostCandidates) {
  //               id:   0    1    2    3    4
  std::vector<double> c{9.0, 3.0, 7.0, 1.0, 5.0};
  const auto w = select_k_closest({1, 2, 3, 4}, c, 2);
  EXPECT_EQ(w, (std::vector<NodeId>{1, 3}));
}

TEST(KClosestTest, TieBreaksTowardLowerId) {
  std::vector<double> c{0.0, 2.0, 2.0, 2.0};
  const auto w = select_k_closest({1, 2, 3}, c, 2);
  EXPECT_EQ(w, (std::vector<NodeId>{1, 2}));
}

TEST(KClosestTest, RejectsOutOfRangeCandidate) {
  std::vector<double> c{0.0, 1.0};
  EXPECT_THROW(select_k_closest({5}, c, 1), std::out_of_range);
}

TEST(KWidestTest, PicksMaximumValueCandidates) {
  std::vector<double> bw{0.0, 3.0, 9.0, 1.0, 5.0};
  const auto w = select_k_widest({1, 2, 3, 4}, bw, 2);
  EXPECT_EQ(w, (std::vector<NodeId>{2, 4}));
}

TEST(KRegularTest, PaperOffsetsExactWhenDivisible) {
  // n=13, k=2: stride (n-1)/(k+1) = 4 -> offsets {1, 5}.
  EXPECT_EQ(k_regular_offsets(13, 2), (std::vector<int>{1, 5}));
  // n=10, k=2: stride 3 -> offsets {1, 4}.
  EXPECT_EQ(k_regular_offsets(10, 2), (std::vector<int>{1, 4}));
}

TEST(KRegularTest, WiringWrapsAroundRing) {
  // n=10, k=2 -> offsets {1,4}; node 8 connects to 9 and 2.
  EXPECT_EQ(select_k_regular(8, 10, 2), (std::vector<NodeId>{2, 9}));
}

TEST(KRegularTest, AllNodesGetSamePattern) {
  const std::size_t n = 13;
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    const auto w = select_k_regular(v, n, 3);
    EXPECT_EQ(w.size(), 3u);
    for (NodeId t : w) EXPECT_NE(t, v);
  }
}

TEST(KRegularTest, OffsetsDistinct) {
  for (std::size_t n : {8, 20, 50}) {
    for (std::size_t k = 1; k < 7; ++k) {
      const auto offsets = k_regular_offsets(n, k);
      const std::set<int> unique(offsets.begin(), offsets.end());
      EXPECT_EQ(unique.size(), offsets.size());
      for (int o : offsets) {
        EXPECT_GE(o, 1);
        EXPECT_LT(o, static_cast<int>(n));
      }
    }
  }
}

TEST(KRegularTest, Rejections) {
  EXPECT_THROW(k_regular_offsets(1, 1), std::invalid_argument);
  EXPECT_THROW(k_regular_offsets(10, 0), std::invalid_argument);
  EXPECT_THROW(k_regular_offsets(10, 10), std::invalid_argument);
  EXPECT_THROW(select_k_regular(10, 10, 2), std::out_of_range);
}

// --- Best response ---

/// Builds a delay objective over a random overlay for BR testing.
DelayObjective random_objective(std::uint64_t seed, std::size_t n, std::size_t k) {
  const auto delays = net::make_planetlab_like(n, seed);
  graph::Digraph overlay(n);
  util::Rng rng(seed ^ 0xABCD);
  // Random residual wiring for everyone (self's wiring is irrelevant).
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      if (v != u) candidates.push_back(v);
    }
    for (NodeId v : select_k_random(candidates, k, rng)) {
      overlay.set_edge(u, v, delays.delay(u, v));
    }
  }
  std::vector<double> direct(n);
  for (std::size_t v = 1; v < n; ++v) direct[v] = delays.delay(0, static_cast<int>(v));
  return make_delay_objective(overlay, 0, direct);
}

TEST(BestResponseTest, ExactBeatsOrMatchesEveryHeuristicWiring) {
  const auto obj = random_objective(11, 12, 2);
  BestResponseOptions options;
  options.exact_budget = 100'000;
  const auto br = best_response(obj, 2, options);
  EXPECT_TRUE(br.exact);
  EXPECT_EQ(br.wiring.size(), 2u);
  // Against every possible pair (exhaustive ground truth).
  for (NodeId a = 1; a < 12; ++a) {
    for (NodeId b = a + 1; b < 12; ++b) {
      const std::vector<NodeId> w{a, b};
      EXPECT_LE(br.cost, obj.cost(w) + 1e-9);
    }
  }
}

TEST(BestResponseTest, LocalSearchWithinFivePercentOfExact) {
  // The paper reports its local-search BR within 5% of optimal; enforce
  // that bound across seeds.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto obj = random_objective(seed, 14, 3);
    BestResponseOptions exact_opts;
    exact_opts.exact_budget = 1'000'000;
    const auto exact = best_response(obj, 3, exact_opts);
    ASSERT_TRUE(exact.exact);
    BestResponseOptions ls_opts;
    ls_opts.exact_budget = 0;  // force greedy + swaps
    const auto approx = best_response(obj, 3, ls_opts);
    EXPECT_FALSE(approx.exact);
    EXPECT_LE(approx.cost, exact.cost * 1.05 + 1e-9) << "seed " << seed;
    EXPECT_GE(approx.cost, exact.cost - 1e-9);
  }
}

TEST(BestResponseTest, CostMatchesReportedWiring) {
  const auto obj = random_objective(21, 15, 3);
  BestResponseOptions options;
  options.exact_budget = 0;
  const auto br = best_response(obj, 3, options);
  EXPECT_NEAR(obj.cost(br.wiring), br.cost, 1e-9);
}

TEST(BestResponseTest, FixedLinksAreHonored) {
  const auto obj = random_objective(31, 12, 2);
  BestResponseOptions options;
  options.fixed_links = {5};
  const auto br = best_response(obj, 2, options);
  // Free wiring must not duplicate the fixed link.
  EXPECT_EQ(std::find(br.wiring.begin(), br.wiring.end(), 5), br.wiring.end());
  EXPECT_EQ(br.wiring.size(), 2u);
  // Reported cost includes the fixed link.
  std::vector<NodeId> full = br.wiring;
  full.push_back(5);
  EXPECT_NEAR(obj.cost(full), br.cost, 1e-9);
}

TEST(BestResponseTest, FixedLinksOnlyWhenKZero) {
  const auto obj = random_objective(41, 10, 2);
  BestResponseOptions options;
  options.fixed_links = {3, 7};
  const auto br = best_response(obj, 0, options);
  EXPECT_TRUE(br.wiring.empty());
  const std::vector<NodeId> fixed{3, 7};
  EXPECT_NEAR(br.cost, obj.cost(fixed), 1e-9);
}

TEST(BestResponseTest, MoreLinksNeverHurt) {
  // BR cost is monotone non-increasing in k (superset wirings available).
  const auto obj = random_objective(51, 16, 3);
  BestResponseOptions options;
  options.exact_budget = 0;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 6; ++k) {
    const auto br = best_response(obj, k, options);
    EXPECT_LE(br.cost, prev + 1e-9) << "k=" << k;
    prev = br.cost;
  }
}

TEST(BestResponseTest, KLargerThanPoolTakesEverything) {
  const auto obj = random_objective(61, 8, 2);
  const auto br = best_response(obj, 100);
  EXPECT_EQ(br.wiring.size(), 7u);  // all other nodes
}

// Property sweep: BR (local search) never loses to k-Random or k-Closest
// on the same objective — the core claim behind every figure.
class BrDominanceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(BrDominanceTest, BrAtLeastAsGoodAsHeuristics) {
  const auto [seed, k] = GetParam();
  const auto obj = random_objective(seed, 20, k);
  BestResponseOptions options;
  options.exact_budget = 0;
  const auto br = best_response(obj, k, options);

  util::Rng rng(seed * 7 + 1);
  std::vector<double> direct(20, 0.0);
  // Rebuild the same direct costs used by random_objective.
  const auto delays = net::make_planetlab_like(20, seed);
  for (int v = 1; v < 20; ++v) direct[static_cast<std::size_t>(v)] = delays.delay(0, v);

  const auto random_w = select_k_random(obj.candidates(), k, rng);
  const auto closest_w = select_k_closest(obj.candidates(), direct, k);
  EXPECT_LE(br.cost, obj.cost(random_w) + 1e-9);
  EXPECT_LE(br.cost, obj.cost(closest_w) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, BrDominanceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(std::size_t{2}, std::size_t{4})));

}  // namespace
}  // namespace egoist::core
