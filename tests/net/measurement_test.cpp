#include "net/measurement.hpp"

#include <gtest/gtest.h>

#include "net/bandwidth.hpp"
#include "net/delay_space.hpp"
#include "util/stats.hpp"

namespace egoist::net {
namespace {

TEST(PingProberTest, EstimateNearHalfRtt) {
  const auto d = make_planetlab_like(10, 3);
  PingProber prober(d, 5, /*jitter_ms=*/0.0, /*samples=*/1);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_NEAR(prober.estimate_one_way(i, j), d.rtt(i, j) / 2.0, 1e-9);
    }
  }
}

TEST(PingProberTest, JitterBiasesUpward) {
  // Queueing noise only adds delay, so estimates exceed the true half-RTT.
  const auto d = make_planetlab_like(5, 7);
  PingProber prober(d, 9, /*jitter_ms=*/5.0, /*samples=*/10);
  util::OnlineStats bias;
  for (int r = 0; r < 50; ++r) {
    bias.add(prober.estimate_one_way(0, 1) - d.rtt(0, 1) / 2.0);
  }
  EXPECT_GT(bias.mean(), 0.0);
}

TEST(PingProberTest, MoreSamplesLessVariance) {
  const auto d = make_planetlab_like(5, 7);
  PingProber noisy(d, 11, 5.0, 1);
  PingProber smooth(d, 11, 5.0, 50);
  util::OnlineStats v1, v50;
  for (int r = 0; r < 100; ++r) {
    v1.add(noisy.estimate_one_way(0, 1));
    v50.add(smooth.estimate_one_way(0, 1));
  }
  EXPECT_LT(v50.stddev(), v1.stddev());
}

TEST(PingProberTest, BitsPerEstimateCountsBothDirections) {
  const auto d = make_planetlab_like(5, 1);
  PingProber prober(d, 1, 1.0, 5);
  EXPECT_DOUBLE_EQ(prober.bits_per_estimate(), 2.0 * 320.0 * 5);
}

TEST(PingProberTest, LoadFormulaMatchesPaper) {
  // (n - k - 1) * 320 / T bps per node; n=50, k=5, T=60 s.
  EXPECT_NEAR(PingProber::ping_load_bps(50, 5, 60.0), 44.0 * 320.0 / 60.0, 1e-9);
}

TEST(PingProberTest, Rejections) {
  const auto d = make_planetlab_like(5, 1);
  EXPECT_THROW(PingProber(d, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(PingProber(d, 1, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(PingProber::ping_load_bps(50, 5, 0.0), std::invalid_argument);
}

TEST(PingProberTest, LoadFormulaClampsDegenerateOverlays) {
  // Regression: n <= k + 1 means every other node is already a neighbor;
  // the (n - k - 1) term used to underflow (std::size_t) and the guard
  // threw. Degenerate overlays now report zero re-probing load.
  EXPECT_DOUBLE_EQ(PingProber::ping_load_bps(3, 5, 60.0), 0.0);
  EXPECT_DOUBLE_EQ(PingProber::ping_load_bps(6, 5, 60.0), 0.0);  // n == k + 1
  EXPECT_DOUBLE_EQ(PingProber::ping_load_bps(5, 5, 60.0), 0.0);
  // First non-degenerate point: exactly one non-neighbor to probe.
  EXPECT_NEAR(PingProber::ping_load_bps(7, 5, 60.0), 320.0 / 60.0, 1e-12);
  // Monotone in n beyond the clamp.
  EXPECT_LT(PingProber::ping_load_bps(7, 5, 60.0),
            PingProber::ping_load_bps(8, 5, 60.0));
}

TEST(BandwidthProberTest, ZeroErrorIsExact) {
  BandwidthModel bw(8, 13);
  BandwidthProber prober(bw, 17, 0.0);
  EXPECT_DOUBLE_EQ(prober.estimate(0, 1), bw.avail_bw(0, 1));
}

TEST(BandwidthProberTest, ErrorStaysRelative) {
  BandwidthModel bw(8, 13);
  BandwidthProber prober(bw, 17, 0.05);
  const double truth = bw.avail_bw(2, 3);
  util::OnlineStats rel;
  for (int r = 0; r < 200; ++r) {
    rel.add((prober.estimate(2, 3) - truth) / truth);
  }
  EXPECT_NEAR(rel.mean(), 0.0, 0.02);
  EXPECT_NEAR(rel.stddev(), 0.05, 0.02);
}

TEST(BandwidthProberTest, RejectsBadError) {
  BandwidthModel bw(4, 1);
  EXPECT_THROW(BandwidthProber(bw, 1, -0.1), std::invalid_argument);
  EXPECT_THROW(BandwidthProber(bw, 1, 1.0), std::invalid_argument);
}

TEST(OverheadFormulasTest, CoordLoadMatchesPaper) {
  // (320 + 32 n) / T bps; n=50, T=60.
  EXPECT_NEAR(OverheadFormulas::coord_load_bps(50, 60.0),
              (320.0 + 32.0 * 50.0) / 60.0, 1e-9);
}

TEST(OverheadFormulasTest, LsaLoadMatchesPaper) {
  // (192 + 32 k) / T_announce bps; k=5, T_announce=20.
  EXPECT_NEAR(OverheadFormulas::lsa_load_bps(5, 20.0),
              (192.0 + 32.0 * 5.0) / 20.0, 1e-9);
}

TEST(OverheadFormulasTest, CoordCheaperThanPingAtScale) {
  // The paper's rationale for pyxida: measurement load grows O(1) per node
  // vs O(n) for ping.
  const double ping = PingProber::ping_load_bps(500, 5, 60.0);
  const double coords = OverheadFormulas::coord_load_bps(500, 60.0);
  EXPECT_LT(coords, ping);
}

TEST(OverheadFormulasTest, Rejections) {
  EXPECT_THROW(OverheadFormulas::coord_load_bps(10, 0.0), std::invalid_argument);
  EXPECT_THROW(OverheadFormulas::lsa_load_bps(5, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::net
