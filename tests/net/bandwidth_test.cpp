#include "net/bandwidth.hpp"

#include <gtest/gtest.h>

namespace egoist::net {
namespace {

TEST(BandwidthModelTest, AvailBwPositiveAndBelowCapacity) {
  BandwidthModel bw(20, 5);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (i == j) continue;
      EXPECT_GE(bw.avail_bw(i, j), 0.0);
      EXPECT_LE(bw.avail_bw(i, j), bw.capacity(i, j));
      EXPECT_GT(bw.capacity(i, j), 0.0);
    }
  }
}

TEST(BandwidthModelTest, DeterministicForSeed) {
  BandwidthModel a(10, 42), b(10, 42);
  EXPECT_DOUBLE_EQ(a.avail_bw(0, 1), b.avail_bw(0, 1));
  a.advance(10.0);
  b.advance(10.0);
  EXPECT_DOUBLE_EQ(a.avail_bw(0, 1), b.avail_bw(0, 1));
}

TEST(BandwidthModelTest, AdvanceChangesAvailability) {
  BandwidthModel bw(10, 7);
  const double before = bw.avail_bw(0, 1);
  bw.advance(120.0);
  EXPECT_NE(before, bw.avail_bw(0, 1));
}

TEST(BandwidthModelTest, CapacityStableUnderAdvance) {
  BandwidthModel bw(10, 7);
  const double cap = bw.capacity(2, 3);
  bw.advance(500.0);
  EXPECT_DOUBLE_EQ(bw.capacity(2, 3), cap);
}

TEST(BandwidthModelTest, UplinkBoundsAllPairsFromNode) {
  BandwidthModel bw(12, 9);
  // capacity(i, j) <= capacity of i's uplink, so min over j should equal
  // some pair's core/downlink; at least the bound must hold pairwise.
  for (int j = 1; j < 12; ++j) {
    EXPECT_LE(bw.capacity(0, j),
              std::max(bw.capacity(0, 1), bw.capacity(0, j)) + 1e12);
    EXPECT_GT(bw.capacity(0, j), 0.0);
  }
}

TEST(BandwidthModelTest, Rejections) {
  EXPECT_THROW(BandwidthModel(1, 1), std::invalid_argument);
  BandwidthModel bw(5, 1);
  EXPECT_THROW(bw.avail_bw(0, 0), std::invalid_argument);
  EXPECT_THROW(bw.avail_bw(0, 9), std::out_of_range);
  EXPECT_THROW(bw.advance(-1.0), std::invalid_argument);
}

TEST(PeeringModelTest, ProviderCountsInRange) {
  PeeringModel p(30, 11, 1, 3);
  for (int v = 0; v < 30; ++v) {
    EXPECT_GE(p.providers(v), 1);
    EXPECT_LE(p.providers(v), 3);
  }
}

TEST(PeeringModelTest, EgressDeterministicAndInRange) {
  PeeringModel p(20, 13, 2, 3);
  for (int via = 1; via < 20; ++via) {
    const int e1 = p.egress_point(0, via);
    const int e2 = p.egress_point(0, via);
    EXPECT_EQ(e1, e2);
    EXPECT_GE(e1, 0);
    EXPECT_LT(e1, p.providers(0));
  }
}

TEST(PeeringModelTest, MultihomedNodesUseMultiplePoints) {
  PeeringModel p(40, 17, 3, 3);
  std::set<int> points;
  for (int via = 1; via < 40; ++via) points.insert(p.egress_point(0, via));
  EXPECT_GE(points.size(), 2u);  // many neighbors hash across points
}

TEST(PeeringModelTest, AggregateRateIsSumOfCaps) {
  PeeringModel p(10, 19, 2, 2, 2.0);
  for (int v = 0; v < 10; ++v) {
    double sum = 0.0;
    for (int pt = 0; pt < p.providers(v); ++pt) sum += p.session_cap(v, pt);
    EXPECT_DOUBLE_EQ(p.max_aggregate_rate(v), sum);
    EXPECT_GT(sum, 0.0);
  }
}

TEST(PeeringModelTest, Rejections) {
  EXPECT_THROW(PeeringModel(10, 1, 0, 3), std::invalid_argument);
  EXPECT_THROW(PeeringModel(10, 1, 3, 2), std::invalid_argument);
  EXPECT_THROW(PeeringModel(10, 1, 1, 2, 0.0), std::invalid_argument);
  PeeringModel p(5, 1);
  EXPECT_THROW(p.providers(9), std::out_of_range);
  EXPECT_THROW(p.session_cap(0, 99), std::out_of_range);
}

}  // namespace
}  // namespace egoist::net
