#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace egoist::net {
namespace {

TEST(WaxmanTest, ProducesConnectedSymmetricGraph) {
  const auto u = make_waxman(80, 3);
  EXPECT_EQ(u.routers.node_count(), 80u);
  EXPECT_TRUE(graph::is_strongly_connected(u.routers));
  for (graph::NodeId a = 0; a < 80; ++a) {
    for (const auto& e : u.routers.out_edges(a)) {
      EXPECT_TRUE(u.routers.has_edge(e.to, a));
      EXPECT_DOUBLE_EQ(u.routers.edge_weight(e.to, a), e.weight);
      EXPECT_GT(e.weight, 0.0);
    }
  }
}

TEST(WaxmanTest, DeterministicForSeed) {
  const auto a = make_waxman(40, 9);
  const auto b = make_waxman(40, 9);
  EXPECT_EQ(a.routers.edge_count(), b.routers.edge_count());
}

TEST(WaxmanTest, RejectsBadParameters) {
  EXPECT_THROW(make_waxman(1, 1), std::invalid_argument);
  EXPECT_THROW(make_waxman(10, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(make_waxman(10, 1, 0.5, -1.0), std::invalid_argument);
}

TEST(BarabasiAlbertTest, ConnectedWithExpectedEdgeCount) {
  const std::size_t n = 100;
  const std::size_t m = 2;
  const auto u = make_barabasi_albert(n, 5, m);
  EXPECT_TRUE(graph::is_strongly_connected(u.routers));
  // Seed clique has C(m+1,2)=3 undirected edges; each later router adds m.
  const std::size_t expected_undirected = 3 + (n - m - 1) * m;
  EXPECT_EQ(u.routers.edge_count(), 2 * expected_undirected);
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  const auto u = make_barabasi_albert(200, 7, 2);
  std::size_t max_deg = 0;
  for (graph::NodeId v = 0; v < 200; ++v) {
    max_deg = std::max(max_deg, u.routers.out_degree(v));
  }
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GE(max_deg, 12u);
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  EXPECT_THROW(make_barabasi_albert(3, 1, 0), std::invalid_argument);
  EXPECT_THROW(make_barabasi_albert(2, 1, 2), std::invalid_argument);
}

TEST(DelayFromUnderlayTest, ProducesValidDelaySpace) {
  const auto u = make_waxman(60, 21);
  const auto d = delay_space_from_underlay(u, 20, 22);
  EXPECT_EQ(d.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (i == j) {
        EXPECT_DOUBLE_EQ(d.delay(i, j), 0.0);
      } else {
        EXPECT_GT(d.delay(i, j), 0.0);
      }
    }
  }
}

TEST(DelayFromUnderlayTest, UnderlayTriangleRoughlyHolds) {
  // Delays inherited from shortest paths satisfy the triangle inequality up
  // to the injected asymmetry skew.
  const auto u = make_barabasi_albert(80, 31, 2);
  const auto d = delay_space_from_underlay(u, 15, 32, /*asymmetry=*/0.0);
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 15; ++j) {
      if (i == j) continue;
      for (int v = 0; v < 15; ++v) {
        if (v == i || v == j) continue;
        EXPECT_GE(d.delay(i, v) + d.delay(v, j), d.delay(i, j) - 1e-6);
      }
    }
  }
}

TEST(DelayFromUnderlayTest, RejectsOversizedOverlay) {
  const auto u = make_waxman(10, 1);
  EXPECT_THROW(delay_space_from_underlay(u, 11, 2), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::net
