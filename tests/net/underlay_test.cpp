// Underlay-backend contract tests: counter-hash primitives, the dense
// backend's bit-equality with the raw models, the procedural backend's
// determinism / pure-function-of-time semantics, distribution sanity, and
// the O(n) vs O(n^2) memory split the scale experiments rely on.
#include "net/underlay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace egoist::net {
namespace {

TEST(CounterHashTest, DeterministicAndCounterSensitive) {
  EXPECT_EQ(counter_hash(1, 2, 3, 4), counter_hash(1, 2, 3, 4));
  EXPECT_NE(counter_hash(1, 2, 3, 4), counter_hash(2, 2, 3, 4));
  EXPECT_NE(counter_hash(1, 2, 3, 4), counter_hash(1, 3, 3, 4));
  EXPECT_NE(counter_hash(1, 2, 3, 4), counter_hash(1, 2, 4, 4));
  EXPECT_NE(counter_hash(1, 2, 3, 4), counter_hash(1, 2, 3, 5));
  // Swapping counter values across positions must not collide.
  EXPECT_NE(counter_hash(1, 2, 3, 4), counter_hash(1, 3, 2, 4));
}

TEST(CounterHashTest, UnitAndGaussianMoments) {
  util::OnlineStats unit, gauss;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto h = counter_hash(99, i, 0, 0);
    const double u = hash_unit(h);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
    unit.add(u);
    gauss.add(hash_gaussian(h));
  }
  EXPECT_NEAR(unit.mean(), 0.5, 0.01);
  EXPECT_NEAR(gauss.mean(), 0.0, 0.03);
  EXPECT_NEAR(gauss.stddev(), 1.0, 0.03);
}

TEST(OuNoiseTest, ContinuousInTimeAndDecorrelatedAcrossTau) {
  constexpr double kTau = 100.0;
  // Pure function of its arguments: re-evaluation matches.
  EXPECT_DOUBLE_EQ(ou_noise(7, 1, 2, 123.0, kTau),
                   ou_noise(7, 1, 2, 123.0, kTau));
  // Small time steps move the value a little (smoothstep interpolation),
  // not discontinuously.
  const double base = ou_noise(7, 1, 2, 150.0, kTau);
  EXPECT_LT(std::abs(ou_noise(7, 1, 2, 150.5, kTau) - base), 0.2);
  // Across many correlation times, values decorrelate to ~unit variance.
  util::OnlineStats stats;
  for (int s = 0; s < 4000; ++s) {
    stats.add(ou_noise(7, 1, 2, (s + 0.25) * kTau, kTau));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  // The blend is renormalized, so the process is unit-variance at every
  // lattice fraction, not just at the lattice points.
  EXPECT_NEAR(stats.stddev(), 1.0, 0.1);
  EXPECT_THROW(ou_noise(7, 1, 2, 0.0, 0.0), std::invalid_argument);
}

TEST(UnderlayKindTest, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_underlay_kind("dense"), UnderlayKind::kDense);
  EXPECT_EQ(parse_underlay_kind("procedural"), UnderlayKind::kProcedural);
  EXPECT_STREQ(to_string(UnderlayKind::kDense), "dense");
  EXPECT_STREQ(to_string(UnderlayKind::kProcedural), "procedural");
  EXPECT_THROW(parse_underlay_kind("sparse"), std::invalid_argument);
}

TEST(DenseUnderlayTest, FieldsAreTheRawModelsBitForBit) {
  constexpr std::size_t kN = 16;
  constexpr std::uint64_t kSeed = 42;
  DenseUnderlay dense(kN, kSeed, {}, {}, {});
  const auto reference = make_planetlab_like(kN, kSeed);
  BandwidthModel bw(kN, kSeed ^ 0xB00Bull);
  LoadModel load(kN, kSeed ^ 0x10ADull);
  for (int i = 0; i < static_cast<int>(kN); ++i) {
    EXPECT_DOUBLE_EQ(dense.load().load(i), load.load(i));
    for (int j = 0; j < static_cast<int>(kN); ++j) {
      EXPECT_DOUBLE_EQ(dense.delays().delay(i, j), reference.delay(i, j));
      if (i != j) {
        EXPECT_DOUBLE_EQ(dense.bandwidth().avail_bw(i, j), bw.avail_bw(i, j));
      }
    }
  }
  // Advancing the backend advances bandwidth then load, exactly like the
  // historical Substrate step.
  dense.advance(60.0);
  bw.advance(60.0);
  load.advance(60.0);
  EXPECT_DOUBLE_EQ(dense.bandwidth().avail_bw(0, 1), bw.avail_bw(0, 1));
  EXPECT_DOUBLE_EQ(dense.load().load(0), load.load(0));
}

TEST(ProceduralUnderlayTest, DeterministicAndSeedSensitive) {
  ProceduralUnderlay a(64, 7);
  ProceduralUnderlay b(64, 7);
  ProceduralUnderlay c(64, 8);
  a.advance(123.0);
  b.advance(123.0);
  c.advance(123.0);
  bool any_differs = false;
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(a.node_load(i), b.node_load(i));
    for (int j = 0; j < 64; ++j) {
      EXPECT_DOUBLE_EQ(a.delay(i, j), b.delay(i, j));
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(a.avail_bw(i, j), b.avail_bw(i, j));
      any_differs = any_differs || a.delay(i, j) != c.delay(i, j);
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(ProceduralUnderlayTest, ValuesAreWellFormed) {
  ProceduralUnderlay u(48, 3);
  u.advance(500.0);
  for (int i = 0; i < 48; ++i) {
    EXPECT_DOUBLE_EQ(u.delay(i, i), 0.0);
    EXPECT_GE(u.node_load(i), 0.05);
    EXPECT_GE(u.cluster(i), 0);
    for (int j = 0; j < 48; ++j) {
      if (i == j) continue;
      EXPECT_GT(u.delay(i, j), 0.0);
      EXPECT_GT(u.capacity(i, j), 0.0);
      EXPECT_GE(u.avail_bw(i, j), 0.0);
      EXPECT_LE(u.avail_bw(i, j), u.capacity(i, j));
    }
  }
  EXPECT_THROW(u.delay(0, 48), std::out_of_range);
  EXPECT_THROW(u.capacity(0, 0), std::invalid_argument);
  EXPECT_THROW(u.advance(-1.0), std::invalid_argument);
}

TEST(ProceduralUnderlayTest, PairQuantitiesArePureFunctionsOfTime) {
  // Two instances advanced along different schedules agree whenever their
  // clocks agree — the O(1) advance() contract.
  ProceduralUnderlay fine(32, 11);
  ProceduralUnderlay coarse(32, 11);
  for (int s = 0; s < 60; ++s) fine.advance(1.0);
  coarse.advance(60.0);
  EXPECT_DOUBLE_EQ(fine.now(), coarse.now());
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(fine.node_load(i), coarse.node_load(i));
    for (int j = 0; j < 32; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(fine.avail_bw(i, j), coarse.avail_bw(i, j));
      }
    }
  }
  // Static quantities do not move with the clock.
  ProceduralUnderlay still(32, 11);
  EXPECT_DOUBLE_EQ(still.delay(3, 9), fine.delay(3, 9));
  EXPECT_DOUBLE_EQ(still.capacity(3, 9), fine.capacity(3, 9));
}

TEST(ProceduralUnderlayTest, AttributesIndependentOfN) {
  // Counter-hashed per-node attributes: node i looks the same in a small
  // and a large deployment (dense generators cannot do this).
  ProceduralUnderlay small(32, 5);
  ProceduralUnderlay large(256, 5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(small.cluster(i), large.cluster(i));
    EXPECT_DOUBLE_EQ(small.node_load(i), large.node_load(i));
    for (int j = 0; j < 32; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(small.delay(i, j), large.delay(i, j));
      }
    }
  }
}

TEST(ProceduralUnderlayTest, DelayStructureMatchesPlanetLabShape) {
  // Same qualitative structure as the dense generator: intra-cluster pairs
  // are much closer than inter-cluster pairs on average.
  ProceduralUnderlay u(200, 17);
  util::OnlineStats intra, inter;
  for (int i = 0; i < 200; ++i) {
    for (int j = i + 1; j < 200; ++j) {
      (u.cluster(i) == u.cluster(j) ? intra : inter).add(u.delay(i, j));
    }
  }
  ASSERT_GT(intra.count(), 0u);
  ASSERT_GT(inter.count(), 0u);
  EXPECT_LT(intra.mean() * 2.0, inter.mean());
}

TEST(UnderlayMemoryTest, ProceduralIsLinearDenseIsQuadratic) {
  const auto dense_small = make_underlay(UnderlayKind::kDense, 32, 1, {}, {}, {});
  const auto dense_large = make_underlay(UnderlayKind::kDense, 128, 1, {}, {}, {});
  const auto proc_small =
      make_underlay(UnderlayKind::kProcedural, 32, 1, {}, {}, {});
  const auto proc_large =
      make_underlay(UnderlayKind::kProcedural, 128, 1, {}, {}, {});
  // Dense quadruples-per-doubling (x16 for x4 n), procedural is linear.
  EXPECT_GE(dense_large->memory_bytes(), dense_small->memory_bytes() * 12);
  EXPECT_LE(proc_large->memory_bytes(), proc_small->memory_bytes() * 4);
  EXPECT_LT(proc_large->memory_bytes() * 10, dense_large->memory_bytes());
}

}  // namespace
}  // namespace egoist::net
