#include "net/delay_space.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace egoist::net {
namespace {

TEST(DelaySpaceTest, WrapsExplicitMatrix) {
  DelaySpace d({{0.0, 1.0}, {2.0, 0.0}});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.delay(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d.delay(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.rtt(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.rtt(1, 0), 3.0);
}

TEST(DelaySpaceTest, RejectsMalformedMatrices) {
  EXPECT_THROW(DelaySpace({{0.0, 1.0}}), std::invalid_argument);          // not square
  EXPECT_THROW(DelaySpace({{1.0, 1.0}, {1.0, 0.0}}), std::invalid_argument);  // diag
  EXPECT_THROW(DelaySpace({{0.0, -1.0}, {1.0, 0.0}}), std::invalid_argument); // negative
}

TEST(DelaySpaceTest, RejectsOutOfRangeIds) {
  DelaySpace d({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_THROW(d.delay(0, 2), std::out_of_range);
  EXPECT_THROW(d.delay(-1, 0), std::out_of_range);
}

TEST(PlanetLabLikeTest, DeterministicForSeed) {
  const auto a = make_planetlab_like(20, 7);
  const auto b = make_planetlab_like(20, 7);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(a.delay(i, j), b.delay(i, j));
    }
  }
}

TEST(PlanetLabLikeTest, DifferentSeedsDiffer) {
  const auto a = make_planetlab_like(20, 1);
  const auto b = make_planetlab_like(20, 2);
  EXPECT_NE(a.delay(0, 1), b.delay(0, 1));
}

TEST(PlanetLabLikeTest, DelaysPositiveOffDiagonal) {
  const auto d = make_planetlab_like(50, 3);
  for (int i = 0; i < 50; ++i) {
    for (int j = 0; j < 50; ++j) {
      if (i == j) {
        EXPECT_DOUBLE_EQ(d.delay(i, j), 0.0);
      } else {
        EXPECT_GT(d.delay(i, j), 0.0);
      }
    }
  }
}

TEST(PlanetLabLikeTest, MildAsymmetry) {
  const auto d = make_planetlab_like(30, 5);
  // Directed delays differ but by bounded relative amounts.
  int asymmetric = 0;
  for (int i = 0; i < 30; ++i) {
    for (int j = i + 1; j < 30; ++j) {
      if (d.delay(i, j) != d.delay(j, i)) ++asymmetric;
      const double ratio = d.delay(i, j) / d.delay(j, i);
      EXPECT_GT(ratio, 0.6);
      EXPECT_LT(ratio, 1.7);
    }
  }
  EXPECT_GT(asymmetric, 300);  // most pairs are asymmetric
}

TEST(PlanetLabLikeTest, IntraClusterCloserThanInterCluster) {
  const std::size_t n = 60;
  const std::uint64_t seed = 11;
  const auto d = make_planetlab_like(n, seed);
  const auto cluster = planetlab_like_clusters(n, seed);
  util::OnlineStats intra, inter;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      (cluster[i] == cluster[j] ? intra : inter)
          .add(d.delay(static_cast<int>(i), static_cast<int>(j)));
    }
  }
  ASSERT_GT(intra.count(), 0u);
  ASSERT_GT(inter.count(), 0u);
  EXPECT_LT(intra.mean() * 1.5, inter.mean());
}

TEST(PlanetLabLikeTest, SomeTriangleViolationsExist) {
  // Overlay routing only helps when some direct paths are worse than
  // two-hop detours; the generator must produce such pairs.
  const auto d = make_planetlab_like(50, 13);
  int violations = 0;
  for (int i = 0; i < 50; ++i) {
    for (int j = 0; j < 50; ++j) {
      if (i == j) continue;
      for (int v = 0; v < 50; ++v) {
        if (v == i || v == j) continue;
        if (d.delay(i, v) + d.delay(v, j) < d.delay(i, j)) {
          ++violations;
          break;
        }
      }
    }
  }
  EXPECT_GT(violations, 50);
}

TEST(PlanetLabLikeTest, ClusterWeightsValidated) {
  GeoDelayConfig config;
  config.cluster_weights = {};
  EXPECT_THROW(make_planetlab_like(10, 1, config), std::invalid_argument);
  config.cluster_weights = {0.0, 0.0};
  EXPECT_THROW(make_planetlab_like(10, 1, config), std::invalid_argument);
  config.cluster_weights = {1.0, -1.0};
  EXPECT_THROW(make_planetlab_like(10, 1, config), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::net
