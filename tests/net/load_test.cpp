#include "net/load.hpp"

#include <gtest/gtest.h>

namespace egoist::net {
namespace {

TEST(LoadModelTest, LoadsArePositive) {
  LoadModel m(30, 3);
  for (int v = 0; v < 30; ++v) EXPECT_GT(m.load(v), 0.0);
  m.advance(300.0);
  for (int v = 0; v < 30; ++v) EXPECT_GT(m.load(v), 0.0);
}

TEST(LoadModelTest, DeterministicForSeed) {
  LoadModel a(10, 21), b(10, 21);
  a.advance(60.0);
  b.advance(60.0);
  for (int v = 0; v < 10; ++v) EXPECT_DOUBLE_EQ(a.load(v), b.load(v));
}

TEST(LoadModelTest, HeterogeneousBaseLoads) {
  LoadModel m(50, 5);
  double lo = m.load(0), hi = m.load(0);
  for (int v = 1; v < 50; ++v) {
    lo = std::min(lo, m.load(v));
    hi = std::max(hi, m.load(v));
  }
  EXPECT_GT(hi, 3.0 * lo);  // heavy-tailed spread across hosts
}

TEST(LoadModelTest, AdvanceChangesLoad) {
  LoadModel m(10, 7);
  const double before = m.load(3);
  m.advance(120.0);
  EXPECT_NE(m.load(3), before);
}

TEST(LoadModelTest, SpikesDecay) {
  LoadConfig config;
  config.spike_rate = 0.0;  // no new spikes
  config.volatility = 0.0;  // no fluctuation noise
  LoadModel m(5, 9, config);
  const double base = m.load(0);
  m.advance(1000.0);
  EXPECT_NEAR(m.load(0), base, 1e-9);
}

TEST(LoadModelTest, Rejections) {
  EXPECT_THROW(LoadModel(0, 1), std::invalid_argument);
  LoadModel m(3, 1);
  EXPECT_THROW(m.load(5), std::out_of_range);
  EXPECT_THROW(m.advance(-0.1), std::invalid_argument);
}

TEST(LoadEstimatorTest, TracksConstantLoad) {
  LoadEstimator est(60.0);
  EXPECT_FALSE(est.has_estimate());
  for (int t = 0; t <= 600; t += 15) est.observe(2.5, t);
  EXPECT_TRUE(est.has_estimate());
  EXPECT_NEAR(est.estimate(), 2.5, 1e-9);
}

TEST(LoadEstimatorTest, SmoothsSpikes) {
  LoadEstimator est(60.0);
  est.observe(1.0, 0.0);
  est.observe(100.0, 1.0);  // a 1-second spike barely moves a 60 s EWMA
  EXPECT_LT(est.estimate(), 5.0);
}

}  // namespace
}  // namespace egoist::net
