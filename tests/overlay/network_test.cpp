#include "overlay/network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/connectivity.hpp"
#include "util/stats.hpp"

namespace egoist::overlay {
namespace {

OverlayConfig make_config(Policy policy, std::size_t k = 4,
                          Metric metric = Metric::kDelayPing) {
  OverlayConfig config;
  config.policy = policy;
  config.k = k;
  config.metric = metric;
  config.seed = 99;
  return config;
}

double mean(const std::vector<double>& v) {
  return util::Summary::of(v).mean;
}

TEST(EgoistNetworkTest, ConstructionWiresEveryNode) {
  Environment env(20, 5);
  EgoistNetwork net(env, make_config(Policy::kBestResponse, 3));
  for (int v = 0; v < 20; ++v) {
    EXPECT_LE(net.wiring(v).size(), 3u);
    EXPECT_FALSE(net.wiring(v).empty()) << "node " << v;
    for (NodeId w : net.wiring(v)) EXPECT_NE(w, v);
  }
}

TEST(EgoistNetworkTest, DegreeCapRespectedAcrossPolicies) {
  Environment env(20, 7);
  for (Policy policy : {Policy::kBestResponse, Policy::kHybridBR, Policy::kRandom,
                        Policy::kClosest, Policy::kRegular}) {
    EgoistNetwork net(env, make_config(policy, 4));
    for (int epoch = 0; epoch < 3; ++epoch) net.run_epoch();
    for (int v = 0; v < 20; ++v) {
      EXPECT_LE(net.wiring(v).size(), 4u) << to_string(policy);
      const std::set<NodeId> unique(net.wiring(v).begin(), net.wiring(v).end());
      EXPECT_EQ(unique.size(), net.wiring(v).size()) << "duplicate links";
    }
  }
}

TEST(EgoistNetworkTest, FullMeshConnectsEveryPair) {
  Environment env(12, 9);
  EgoistNetwork net(env, make_config(Policy::kFullMesh, 11));
  for (int v = 0; v < 12; ++v) EXPECT_EQ(net.wiring(v).size(), 11u);
  EXPECT_TRUE(graph::is_strongly_connected(net.announced_graph()));
}

TEST(EgoistNetworkTest, BrOverlayIsConnectedAndConverges) {
  Environment env(30, 11);
  EgoistNetwork net(env, make_config(Policy::kBestResponse, 3));
  int last = 0;
  for (int epoch = 0; epoch < 10; ++epoch) last = net.run_epoch();
  EXPECT_TRUE(graph::is_strongly_connected(net.true_cost_graph()));
  // Re-wiring subsides toward a steady state (measurement noise keeps a
  // small residual rate; it must not stay at "everyone rewires").
  EXPECT_LT(last, 15);
}

TEST(EgoistNetworkTest, BrBeatsHeuristicsOnDelay) {
  Environment env(30, 13);
  EgoistNetwork br(env, make_config(Policy::kBestResponse, 3));
  EgoistNetwork random(env, make_config(Policy::kRandom, 3));
  EgoistNetwork regular(env, make_config(Policy::kRegular, 3));
  for (int epoch = 0; epoch < 8; ++epoch) {
    br.run_epoch();
    random.run_epoch();
    regular.run_epoch();
  }
  const double br_cost = mean(br.node_costs());
  EXPECT_LT(br_cost, mean(random.node_costs()));
  EXPECT_LT(br_cost, mean(regular.node_costs()));
}

TEST(EgoistNetworkTest, FullMeshLowerBoundsBr) {
  Environment env(25, 15);
  EgoistNetwork br(env, make_config(Policy::kBestResponse, 3));
  EgoistNetwork mesh(env, make_config(Policy::kFullMesh, 24));
  for (int epoch = 0; epoch < 8; ++epoch) br.run_epoch();
  EXPECT_LE(mean(mesh.node_costs()), mean(br.node_costs()) * 1.001);
}

TEST(EgoistNetworkTest, BandwidthMetricBrBeatsRandom) {
  Environment env(25, 17);
  EgoistNetwork br(env, make_config(Policy::kBestResponse, 3, Metric::kBandwidth));
  EgoistNetwork random(env, make_config(Policy::kRandom, 3, Metric::kBandwidth));
  for (int epoch = 0; epoch < 6; ++epoch) {
    br.run_epoch();
    random.run_epoch();
  }
  EXPECT_GT(mean(br.node_bandwidth_scores()), mean(random.node_bandwidth_scores()));
}

TEST(EgoistNetworkTest, LoadMetricBrBeatsClosest) {
  Environment env(25, 19);
  EgoistNetwork br(env, make_config(Policy::kBestResponse, 3, Metric::kNodeLoad));
  EgoistNetwork closest(env, make_config(Policy::kClosest, 3, Metric::kNodeLoad));
  for (int epoch = 0; epoch < 6; ++epoch) {
    env.advance(60.0);
    br.run_epoch();
    closest.run_epoch();
  }
  EXPECT_LT(mean(br.node_costs()), mean(closest.node_costs()));
}

TEST(EgoistNetworkTest, RandomAndRegularDoNotRewireWithoutChurn) {
  Environment env(20, 21);
  EgoistNetwork random(env, make_config(Policy::kRandom, 3));
  EgoistNetwork regular(env, make_config(Policy::kRegular, 3));
  for (int epoch = 0; epoch < 5; ++epoch) {
    EXPECT_EQ(random.run_epoch(), 0);
    EXPECT_EQ(regular.run_epoch(), 0);
  }
}

TEST(EgoistNetworkTest, EpsilonSuppressesRewiring) {
  Environment env(30, 23);
  auto strict = make_config(Policy::kBestResponse, 4);
  auto relaxed = strict;
  relaxed.epsilon = 0.1;  // BR(0.1)
  EgoistNetwork br(env, strict);
  EgoistNetwork br_eps(env, relaxed);
  std::uint64_t strict_rewires = 0, eps_rewires = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    env.advance(60.0);
    strict_rewires += static_cast<std::uint64_t>(br.run_epoch());
    eps_rewires += static_cast<std::uint64_t>(br_eps.run_epoch());
  }
  EXPECT_LE(eps_rewires, strict_rewires);
  // The cost penalty for the suppressed re-wirings stays marginal.
  EXPECT_LT(mean(br_eps.node_costs()), mean(br.node_costs()) * 1.3);
}

TEST(EgoistNetworkTest, ChurnOfflineNodesExcluded) {
  Environment env(20, 25);
  EgoistNetwork net(env, make_config(Policy::kBestResponse, 3));
  net.set_online(5, false);
  net.set_online(6, false);
  EXPECT_EQ(net.online_count(), 18u);
  EXPECT_FALSE(net.is_online(5));
  net.run_epoch();
  for (int v = 0; v < 20; ++v) {
    if (!net.is_online(v)) continue;
    for (NodeId w : net.wiring(v)) {
      EXPECT_NE(w, 5);
      EXPECT_NE(w, 6);
    }
  }
}

TEST(EgoistNetworkTest, BrOverlayHealsAfterChurn) {
  Environment env(24, 27);
  EgoistNetwork net(env, make_config(Policy::kBestResponse, 3));
  // Knock out a quarter of the overlay, then let re-wiring repair routing.
  for (int v = 0; v < 6; ++v) net.set_online(v, false);
  net.run_epoch();
  EXPECT_TRUE(graph::is_strongly_connected(net.true_cost_graph()));
  // Rejoin: nodes come back and are folded in at their join.
  for (int v = 0; v < 6; ++v) net.set_online(v, true);
  net.run_epoch();
  EXPECT_EQ(net.online_count(), 24u);
  EXPECT_TRUE(graph::is_strongly_connected(net.true_cost_graph()));
}

TEST(EgoistNetworkTest, HybridBrKeepsBackboneUnderChurn) {
  Environment env(20, 29);
  auto config = make_config(Policy::kHybridBR, 4);
  config.donated_links = 2;
  EgoistNetwork net(env, config);
  for (int v = 0; v < 20; ++v) {
    EXPECT_FALSE(net.donated(v).empty());
  }
  // Backbone alone keeps the overlay connected even if BR links are stale.
  net.set_online(3, false);
  net.set_online(11, false);
  EXPECT_TRUE(graph::is_strongly_connected(net.announced_graph()));
}

TEST(EgoistNetworkTest, EfficiencyDropsWhenPartitioned) {
  Environment env(16, 31);
  EgoistNetwork net(env, make_config(Policy::kBestResponse, 2));
  const double before = mean(net.node_efficiencies());
  for (int v = 8; v < 16; ++v) net.set_online(v, false);
  // No epoch run: survivors may still point at dead neighbors.
  const double after = mean(net.node_efficiencies());
  EXPECT_GT(before, 0.0);
  EXPECT_LE(after, before * 1.5);  // sanity: no spurious inflation
}

TEST(EgoistNetworkTest, CheaterImpactIsBounded) {
  Environment env(30, 33);
  auto honest_config = make_config(Policy::kBestResponse, 3);
  auto cheat_config = honest_config;
  cheat_config.cheaters = {4};
  cheat_config.cheat_factor = 2.0;
  EgoistNetwork honest(env, honest_config);
  EgoistNetwork cheated(env, cheat_config);
  for (int epoch = 0; epoch < 8; ++epoch) {
    honest.run_epoch();
    cheated.run_epoch();
  }
  // §4.5: costs with one free rider stay within ~20% of the honest run.
  EXPECT_NEAR(mean(cheated.node_costs()) / mean(honest.node_costs()), 1.0, 0.2);
}

TEST(EgoistNetworkTest, CheaterAnnouncesInflatedCosts) {
  Environment env(12, 35);
  auto config = make_config(Policy::kClosest, 3);
  config.cheaters = {0};
  config.cheat_factor = 2.0;
  EgoistNetwork net(env, config);
  net.run_epoch();
  const auto announced = net.announced_graph();
  for (NodeId v : net.wiring(0)) {
    const double announced_cost = announced.edge_weight(0, v);
    const double true_delay = env.true_delay(0, v);
    // Announced ~ 2x measured (measured ~ true up to ping noise).
    EXPECT_GT(announced_cost, true_delay * 1.5);
  }
}

TEST(EgoistNetworkTest, Validation) {
  Environment env(10, 37);
  auto config = make_config(Policy::kBestResponse, 0);
  EXPECT_THROW(EgoistNetwork(env, config), std::invalid_argument);
  config = make_config(Policy::kBestResponse, 10);
  EXPECT_THROW(EgoistNetwork(env, config), std::invalid_argument);
  config = make_config(Policy::kHybridBR, 4);
  config.donated_links = 3;  // odd
  EXPECT_THROW(EgoistNetwork(env, config), std::invalid_argument);
  config.donated_links = 4;  // == k
  EXPECT_THROW(EgoistNetwork(env, config), std::invalid_argument);
  config = make_config(Policy::kBestResponse, 3);
  config.cheaters = {50};
  EXPECT_THROW(EgoistNetwork(env, config), std::out_of_range);
  config = make_config(Policy::kBestResponse, 3);
  config.cheat_factor = 0.5;
  EXPECT_THROW(EgoistNetwork(env, config), std::invalid_argument);
}

TEST(EnvironmentTest, MeasurementPlanesAgreeRoughlyWithTruth) {
  Environment env(15, 39);
  // Ping is near-exact; coordinates are coarser but correlated.
  util::OnlineStats ping_err, coord_err;
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 15; ++j) {
      if (i == j) continue;
      const double truth = (env.true_delay(i, j) + env.true_delay(j, i)) / 2.0;
      ping_err.add(std::abs(env.measure_delay_ping(i, j) - truth) / truth);
      coord_err.add(std::abs(env.measure_delay_coords(i, j) - truth) / truth);
    }
  }
  EXPECT_LT(ping_err.mean(), 0.15);
  EXPECT_GT(coord_err.mean(), ping_err.mean());
}

TEST(EnvironmentTest, AdvanceMovesDynamics) {
  Environment env(10, 41);
  const double bw_before = env.true_avail_bw(0, 1);
  const double load_before = env.true_load(0);
  env.advance(300.0);
  EXPECT_NE(env.true_avail_bw(0, 1), bw_before);
  EXPECT_NE(env.true_load(0), load_before);
  EXPECT_DOUBLE_EQ(env.now(), 300.0);
}

}  // namespace
}  // namespace egoist::overlay
