// Lockstep suite for the incremental dirty-set epochs.
//
// The contract (overlay/dirty_tracker.hpp): with drift thresholds disabled
// (exact mode), an incremental overlay's trajectory is bit-identical to the
// full recompute — across policies, underlay backends, epoch worker counts,
// and host schedules — because a node is only skipped when its
// best-response inputs provably did not change. The suites here replay the
// same deployments with incremental on and off through the shared
// determinism harness and diff every epoch.
//
// Exact mode is exercised in two regimes: the default (noisy) measurement
// plane, where announcements never settle and the tracker degenerates to
// the full recompute, and a quiet plane (no ping jitter, no drift), where
// the overlay converges, nodes actually go clean, and skips must still be
// invisible. A separate test pins down that the quiet regime really skips —
// otherwise the identity tests would pass vacuously.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "determinism_harness.hpp"

namespace egoist::testing {
namespace {

using host::OverlaySpec;
using overlay::Metric;
using overlay::Policy;

OverlaySpec base_spec(Policy policy, Metric metric) {
  OverlaySpec spec;
  spec.policy(policy).metric(metric).k(3).seed(99);
  if (policy == Policy::kHybridBR) spec.donated_links(2);
  return spec;
}

overlay::EnvironmentConfig env_config(net::UnderlayKind kind, bool quiet) {
  overlay::EnvironmentConfig env;
  env.underlay = kind;
  if (kind == net::UnderlayKind::kProcedural) env.coord_warmup_rounds = 10;
  if (quiet) {
    // A static measurement plane: measured link values are constant, so
    // announcements settle and the dirty set can actually drain.
    env.ping_jitter_ms = 0.0;
    env.delay_drift_volatility = 0.0;
  }
  return env;
}

churn::ChurnTrace make_trace(std::size_t nodes, int epochs) {
  churn::ChurnConfig config;
  config.mean_on_s = 150.0;
  config.mean_off_s = 50.0;
  config.initial_on_fraction = 0.8;
  return churn::ChurnTrace(nodes, epochs * 60.0, 77, config);
}

/// Records the case with incremental off (the reference) and on (exact
/// mode), and requires bit-identical trajectories.
void expect_incremental_lockstep(const DeterminismCase& reference_case,
                                 const std::string& label) {
  const Trajectory reference = record_trajectory(reference_case);
  DeterminismCase incremental = reference_case;
  incremental.spec.incremental(true);
  expect_same_trajectory(reference, record_trajectory(incremental),
                         label + " [incremental exact]");
}

TEST(IncrementalEpochTest, SequentialEpochsLockstepAcrossBackendsAndNoise) {
  for (Policy policy : {Policy::kBestResponse, Policy::kHybridBR}) {
    for (const auto kind :
         {net::UnderlayKind::kDense, net::UnderlayKind::kProcedural}) {
      for (bool quiet : {false, true}) {
        DeterminismCase c;
        c.epochs = 8;
        c.env = env_config(kind, quiet);
        c.spec = base_spec(policy, Metric::kDelayPing);
        const std::string label =
            std::string(to_string(policy)) + " / " +
            (kind == net::UnderlayKind::kDense ? "dense" : "procedural") +
            (quiet ? " / quiet" : " / noisy");
        expect_incremental_lockstep(c, label);
      }
    }
  }
}

TEST(IncrementalEpochTest, PipelineEpochsLockstepAtEveryWorkerCount) {
  // The pipeline freezes the dirty set into an active list at the epoch
  // boundary; its trajectory family differs from the sequential one, so
  // the reference here is the full-recompute pipeline at the same worker
  // count — and the incremental pipeline must additionally be worker-count
  // invariant with itself.
  for (bool quiet : {false, true}) {
    DeterminismCase c;
    c.epochs = 8;
    c.env = env_config(net::UnderlayKind::kDense, quiet);
    c.spec = base_spec(Policy::kBestResponse, Metric::kDelayPing).workers(1);
    const std::string label =
        std::string("pipeline") + (quiet ? " / quiet" : " / noisy");
    expect_incremental_lockstep(c, label);

    DeterminismCase one = c;
    one.spec.incremental(true).workers(1);
    const Trajectory at_one = record_trajectory(one);
    for (int workers : {2, 4}) {
      DeterminismCase many = c;
      many.spec.incremental(true).workers(workers);
      expect_same_trajectory(at_one, record_trajectory(many),
                             label + " @ workers=" + std::to_string(workers));
    }
  }
}

TEST(IncrementalEpochTest, StaggeredChurnedEpochsLockstep) {
  // Staggered T/n evaluation with churn replay: the skip decision runs at
  // every per-node slot and membership flips must re-seed the dirty set.
  for (Policy policy : {Policy::kBestResponse, Policy::kHybridBR}) {
    for (bool quiet : {false, true}) {
      DeterminismCase c;
      c.epochs = 3;
      c.env = env_config(net::UnderlayKind::kDense, quiet);
      c.spec = base_spec(policy, Metric::kDelayPing)
                   .epoch_period(60.0)
                   .staggered(0xBDu)
                   .churn(make_trace(c.nodes, c.epochs));
      expect_incremental_lockstep(
          c, std::string("staggered ") + to_string(policy) +
                 (quiet ? " / quiet" : " / noisy"));
    }
  }
}

TEST(IncrementalEpochTest, SynchronizedChurnLockstep) {
  DeterminismCase c;
  c.epochs = 4;
  c.env = env_config(net::UnderlayKind::kDense, true);
  c.spec = base_spec(Policy::kHybridBR, Metric::kDelayPing)
               .epoch_period(60.0)
               .churn(make_trace(c.nodes, c.epochs));
  expect_incremental_lockstep(c, "synchronized churn / quiet");
}

TEST(IncrementalEpochTest, QuietConvergedOverlayActuallySkips) {
  // Guard against the lockstep suites passing vacuously: on a quiet plane
  // the overlay converges and later epochs must skip clean nodes (with the
  // noisy default, every announce delta re-marks everyone and nothing is
  // ever skipped — also asserted).
  for (bool quiet : {true, false}) {
    host::OverlayHost host(14, 11, env_config(net::UnderlayKind::kDense, quiet));
    const auto handle = host.deploy(
        base_spec(Policy::kBestResponse, Metric::kDelayPing).incremental(true));
    host.run_epochs(handle, 10);
    const auto snap = host.snapshot(handle);
    EXPECT_EQ(snap.total_evaluations() + snap.total_skipped_evals(), 14u * 10u);
    if (quiet) {
      EXPECT_GT(snap.total_skipped_evals(), 0u)
          << "quiet converged overlay never skipped an evaluation";
      EXPECT_LT(snap.dirty_nodes(), 14u);
    } else {
      EXPECT_EQ(snap.total_skipped_evals(), 0u)
          << "noisy overlay skipped despite continuously drifting announces";
    }
  }
}

TEST(IncrementalEpochTest, EpochEventsCarryEvaluationTelemetry) {
  host::OverlayHost host(14, 11, env_config(net::UnderlayKind::kDense, true));
  const auto handle = host.deploy(
      base_spec(Policy::kBestResponse, Metric::kDelayPing).incremental(true));
  std::vector<host::EpochEvent> events;
  host.on_epoch_end(handle,
                    [&](const host::EpochEvent& e) { events.push_back(e); });
  host.run_epochs(handle, 6);
  ASSERT_EQ(events.size(), 6u);
  std::uint64_t evaluated = 0;
  std::uint64_t skipped = 0;
  for (const auto& e : events) {
    // No churn: every online node either evaluated or was skipped.
    EXPECT_EQ(e.evaluated + e.skipped, e.online_count);
    evaluated += e.evaluated;
    skipped += e.skipped;
  }
  const auto snap = host.snapshot(handle);
  EXPECT_EQ(evaluated, snap.total_evaluations());
  EXPECT_EQ(skipped, snap.total_skipped_evals());
  EXPECT_GT(skipped, 0u);  // quiet plane: the dirty set drained
  // Epoch 1 evaluates the construction-seeded full set.
  EXPECT_EQ(events.front().evaluated, events.front().online_count);
}

TEST(IncrementalEpochTest, NonIncrementalTelemetryIsFullCount) {
  host::OverlayHost host(14, 11, env_config(net::UnderlayKind::kDense, false));
  const auto handle =
      host.deploy(base_spec(Policy::kBestResponse, Metric::kDelayPing));
  host.run_epochs(handle, 3);
  const auto snap = host.snapshot(handle);
  EXPECT_EQ(snap.total_evaluations(), 14u * 3u);
  EXPECT_EQ(snap.total_skipped_evals(), 0u);
  EXPECT_EQ(snap.dirty_nodes(), 14u);  // "everyone always re-evaluates"
}

TEST(IncrementalEpochTest, ToleranceModeStaysWithinScoreBand) {
  // With a drift threshold, marking is selective and only a score band is
  // promised. Compare mean routing cost against the full recompute on the
  // default noisy plane and require it within 15% — comfortably wide for
  // n=14 yet tight enough to catch a tracker that freezes the overlay.
  DeterminismCase reference_case;
  reference_case.epochs = 8;
  reference_case.env = env_config(net::UnderlayKind::kDense, false);
  reference_case.spec = base_spec(Policy::kBestResponse, Metric::kDelayPing);
  const Trajectory reference = record_trajectory(reference_case);

  DeterminismCase tolerant = reference_case;
  tolerant.spec.incremental(true, /*drift_threshold=*/0.05);
  const Trajectory actual = record_trajectory(tolerant);

  auto mean = [](const std::vector<double>& xs) {
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
  };
  const double expected_cost = mean(reference.costs.back());
  const double actual_cost = mean(actual.costs.back());
  EXPECT_NEAR(actual_cost, expected_cost, 0.15 * expected_cost)
      << "tolerance-mode score left the band: " << actual_cost << " vs "
      << expected_cost;
}

TEST(IncrementalEpochTest, ScaleModeIsInternallyDeterministic) {
  // §5 sampled scale mode draws its candidate pools from the policy RNG at
  // evaluation time, so skipping nodes shifts the stream: incremental
  // scale-mode runs are a different (deterministic) trajectory family, not
  // bit-identical to the full recompute. Replaying the same deployment must
  // reproduce it exactly, at any worker count.
  overlay::OverlayConfig config;
  config.policy = Policy::kBestResponse;
  config.metric = Metric::kDelayPing;
  config.k = 3;
  config.seed = 99;
  config.br_sample = 6;
  config.br_landmarks = 8;
  config.incremental = true;

  DeterminismCase c;
  c.nodes = 20;
  c.epochs = 6;
  c.env = env_config(net::UnderlayKind::kProcedural, true);
  c.spec = host::OverlaySpec(config);
  const Trajectory first = record_trajectory(c);
  expect_same_trajectory(first, record_trajectory(c), "scale-mode replay");
  for (int workers : {1, 2}) {
    DeterminismCase parallel = c;
    parallel.spec.workers(workers);
    const Trajectory at_w = record_trajectory(parallel);
    if (workers == 1) continue;
    DeterminismCase one = c;
    one.spec.workers(1);
    expect_same_trajectory(record_trajectory(one), at_w,
                           "scale-mode pipeline workers=2");
  }
}

TEST(IncrementalEpochTest, ConfigValidation) {
  overlay::EnvironmentConfig env;
  host::OverlayHost host(10, 7, env);
  {
    OverlaySpec spec;
    spec.policy(Policy::kRandom).k(3).incremental(true);
    EXPECT_THROW(host.deploy(spec), std::invalid_argument);
  }
  {
    OverlaySpec spec;
    spec.policy(Policy::kBestResponse).k(3).incremental(true).audits(true);
    EXPECT_THROW(host.deploy(spec), std::invalid_argument);
  }
  {
    OverlaySpec spec;
    spec.policy(Policy::kBestResponse).k(3).incremental(true, -0.1);
    EXPECT_THROW(host.deploy(spec), std::invalid_argument);
  }
}

}  // namespace
}  // namespace egoist::testing
