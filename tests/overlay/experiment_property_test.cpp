// Property sweeps mirroring the paper's experimental invariants on small
// instances: these are the claims every figure depends on, checked across
// seeds, metrics and k by parameterized suites.
#include <gtest/gtest.h>

#include "apps/multipath.hpp"
#include "apps/streaming.hpp"
#include "graph/connectivity.hpp"
#include "overlay/network.hpp"
#include "util/stats.hpp"

namespace egoist::overlay {
namespace {

double mean(const std::vector<double>& v) { return util::Summary::of(v).mean; }

OverlayConfig config_for(Policy policy, std::size_t k, Metric metric,
                         std::uint64_t seed) {
  OverlayConfig config;
  config.policy = policy;
  config.k = k;
  config.metric = metric;
  config.seed = seed;
  return config;
}

std::vector<double> settled_costs(Environment& env, EgoistNetwork& net,
                                  int epochs = 6) {
  for (int e = 0; e < epochs; ++e) {
    env.advance(60.0);
    net.run_epoch();
  }
  return net.node_costs();
}

// --- Fig 1 invariant: BR dominates the heuristics on the delay metric ---
class BrDominanceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(BrDominanceSweep, BrBeatsRandomAndRegularOnMeanDelay) {
  const auto [seed, k] = GetParam();
  const std::size_t n = 24;
  Environment br_env(n, seed), random_env(n, seed), regular_env(n, seed);
  EgoistNetwork br(br_env, config_for(Policy::kBestResponse, k,
                                      Metric::kDelayPing, seed));
  EgoistNetwork random(random_env,
                       config_for(Policy::kRandom, k, Metric::kDelayPing, seed));
  EgoistNetwork regular(regular_env,
                        config_for(Policy::kRegular, k, Metric::kDelayPing, seed));
  const double br_cost = mean(settled_costs(br_env, br));
  EXPECT_LT(br_cost, mean(settled_costs(random_env, random)) * 1.02);
  EXPECT_LT(br_cost, mean(settled_costs(regular_env, regular)) * 1.02);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, BrDominanceSweep,
    ::testing::Combine(::testing::Values(3u, 4u, 5u),
                       ::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{5})));

// --- Fig 1 invariant: more neighbors never hurt BR (on the same env) ---
class BrMonotoneInK : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrMonotoneInK, CostShrinksWithK) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 20;
  double prev = 1e18;
  for (std::size_t k : {2, 4, 8}) {
    Environment env(n, seed);
    EgoistNetwork net(env,
                      config_for(Policy::kBestResponse, k, Metric::kDelayPing, seed));
    const double cost = mean(settled_costs(env, net));
    EXPECT_LT(cost, prev * 1.10) << "k=" << k;  // 10% slack for drift noise
    prev = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrMonotoneInK, ::testing::Values(7u, 8u, 9u));

// --- Fig 2 invariant: donated links are a subset of the Hybrid wiring ---
class HybridInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridInvariantSweep, DonatedLinksStayInsideWiring) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 18;
  Environment env(n, seed);
  auto config = config_for(Policy::kHybridBR, 5, Metric::kDelayPing, seed);
  config.donated_links = 2;
  EgoistNetwork net(env, config);
  net.set_online(3, false);
  net.run_epoch();
  net.set_online(3, true);
  net.run_epoch();
  for (int v = 0; v < static_cast<int>(n); ++v) {
    if (!net.is_online(v)) continue;
    const auto& wiring = net.wiring(v);
    EXPECT_LE(wiring.size(), 5u);
    for (graph::NodeId d : net.donated(v)) {
      EXPECT_NE(std::find(wiring.begin(), wiring.end(), d), wiring.end())
          << "donated link missing from wiring of node " << v;
    }
  }
  // The donated backbone alone must keep the overlay strongly connected.
  graph::Digraph backbone(n);
  for (int v = 0; v < static_cast<int>(n); ++v) {
    backbone.set_active(v, net.is_online(v));
    if (!net.is_online(v)) continue;
    for (graph::NodeId d : net.donated(v)) backbone.set_edge(v, d, 1.0);
  }
  EXPECT_TRUE(graph::is_strongly_connected(backbone));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridInvariantSweep,
                         ::testing::Values(11u, 12u, 13u, 14u));

// --- Fig 4 invariant: a lying minority moves costs only slightly ---
class CheaterSweep : public ::testing::TestWithParam<int> {};

TEST_P(CheaterSweep, CostsMoveLessThanTwentyPercent) {
  const int cheater_count = GetParam();
  const std::size_t n = 24;
  const std::uint64_t seed = 31;
  std::vector<int> cheaters;
  for (int c = 0; c < cheater_count; ++c) cheaters.push_back(2 * c);

  Environment honest_env(n, seed), lying_env(n, seed);
  auto honest_config = config_for(Policy::kBestResponse, 3, Metric::kDelayPing, seed);
  auto lying_config = honest_config;
  lying_config.cheaters = cheaters;
  EgoistNetwork honest(honest_env, honest_config);
  EgoistNetwork lying(lying_env, lying_config);
  const double ratio = mean(settled_costs(lying_env, lying)) /
                       mean(settled_costs(honest_env, honest));
  EXPECT_NEAR(ratio, 1.0, 0.2);
}

INSTANTIATE_TEST_SUITE_P(CheaterCounts, CheaterSweep, ::testing::Values(1, 4, 8));

// --- Fig 10/11 invariants on BR overlays ---
class AppInvariantSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AppInvariantSweep, DisjointPathsBoundedByKAndParallelByBound) {
  const std::size_t k = GetParam();
  const std::size_t n = 20;
  const std::uint64_t seed = 41;
  Environment env(n, seed);
  EgoistNetwork net(env, config_for(Policy::kBestResponse, k,
                                    Metric::kBandwidth, seed));
  settled_costs(env, net, 4);
  const auto bw_graph = net.true_bandwidth_graph();
  const net::PeeringModel peering(n, seed, 2, 3, 2.0);
  for (int src = 0; src < 6; ++src) {
    const int dst = static_cast<int>(n) - 1 - src;
    if (src == dst) continue;
    // Disjoint paths cannot exceed the out-degree of the source.
    const int paths = apps::disjoint_path_count(bw_graph, src, dst);
    EXPECT_LE(paths, static_cast<int>(bw_graph.out_degree(src)));
    // Parallel transfer cannot exceed the aggregate peering capacity.
    const auto mp =
        apps::parallel_transfer(bw_graph, env.bandwidth(), peering, src, dst);
    EXPECT_LE(mp.total_rate, peering.max_aggregate_rate(src) + 1e-9);
    // And each session respects its own egress cap.
    for (std::size_t s = 0; s < mp.first_hops.size(); ++s) {
      const int point = peering.egress_point(src, mp.first_hops[s]);
      EXPECT_LE(mp.session_rates[s], peering.session_cap(src, point) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, AppInvariantSweep,
                         ::testing::Values(std::size_t{2}, std::size_t{4},
                                           std::size_t{6}));

// --- §4.3 invariant: BR(eps) never re-wires more than plain BR ---
class EpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonSweep, LargerEpsilonFewerRewirings) {
  const double epsilon = GetParam();
  const std::size_t n = 24;
  const std::uint64_t seed = 51;
  Environment plain_env(n, seed), eps_env(n, seed);
  auto plain_config = config_for(Policy::kBestResponse, 4, Metric::kDelayPing, seed);
  auto eps_config = plain_config;
  eps_config.epsilon = epsilon;
  EgoistNetwork plain(plain_env, plain_config);
  EgoistNetwork with_eps(eps_env, eps_config);
  std::uint64_t plain_rewires = 0, eps_rewires = 0;
  for (int e = 0; e < 8; ++e) {
    plain_env.advance(60.0);
    eps_env.advance(60.0);
    plain_rewires += static_cast<std::uint64_t>(plain.run_epoch());
    eps_rewires += static_cast<std::uint64_t>(with_eps.run_epoch());
  }
  EXPECT_LE(eps_rewires, plain_rewires);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonSweep, ::testing::Values(0.05, 0.1, 0.3));

}  // namespace
}  // namespace egoist::overlay
