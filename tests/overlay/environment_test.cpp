// Measurement-plane contract tests for the underlay-backend seam: dense
// planes keep the historical n^2 layout below the threshold, sparse planes
// key state by probed pairs (and derive drift procedurally), and
// identically-seeded planes on one substrate stay in lockstep on either
// backend.
#include "overlay/environment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace egoist::overlay {
namespace {

EnvironmentConfig sparse_config(net::UnderlayKind kind) {
  EnvironmentConfig config;
  config.underlay = kind;
  config.sparse_plane_threshold = 0;  // sparse planes at any size
  config.coord_warmup_rounds = 5;
  return config;
}

TEST(EnvironmentPlaneTest, DenseAndSparsePlanesAgreeOnPingValues) {
  // The sparse plane changes *storage*, not the ping pipeline: with drift
  // disabled (dense drift starts at 0; the procedural stream is stationary
  // and must be silenced to compare) and no advance() between probes, the
  // same probe sequence yields bit-identical EWMAs on both layouts.
  EnvironmentConfig dense;
  dense.coord_warmup_rounds = 5;
  dense.sparse_plane_threshold = 1u << 20;
  dense.delay_drift_volatility = 0.0;
  auto sparse = dense;
  sparse.sparse_plane_threshold = 0;

  Environment dense_env(10, 42, dense);
  Environment sparse_env(10, 42, sparse);
  ASSERT_FALSE(dense_env.sparse_plane());
  ASSERT_TRUE(sparse_env.sparse_plane());

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      for (int j = 0; j < 10; ++j) {
        if (i == j) continue;
        EXPECT_DOUBLE_EQ(dense_env.measure_delay_ping(i, j),
                         sparse_env.measure_delay_ping(i, j));
      }
    }
  }
  EXPECT_EQ(dense_env.probed_pairs(), 90u);
  EXPECT_EQ(sparse_env.probed_pairs(), 90u);
}

TEST(EnvironmentPlaneTest, SparsePlaneMemoryTracksProbedPairs) {
  Environment env(200, 7, sparse_config(net::UnderlayKind::kProcedural));
  ASSERT_TRUE(env.sparse_plane());
  EXPECT_EQ(env.probed_pairs(), 0u);
  const std::size_t empty_bytes = env.plane_memory_bytes();
  for (int j = 1; j <= 20; ++j) env.measure_delay_ping(0, j);
  EXPECT_EQ(env.probed_pairs(), 20u);
  EXPECT_GT(env.plane_memory_bytes(), empty_bytes);
  // Re-probing existing pairs allocates nothing new.
  const std::size_t bytes = env.plane_memory_bytes();
  for (int j = 1; j <= 20; ++j) env.measure_delay_ping(0, j);
  EXPECT_EQ(env.probed_pairs(), 20u);
  EXPECT_EQ(env.plane_memory_bytes(), bytes);

  // The dense plane at the same n would hold 2 * n^2 doubles.
  EnvironmentConfig dense;
  dense.coord_warmup_rounds = 5;
  Environment dense_env(200, 7, dense);
  ASSERT_FALSE(dense_env.sparse_plane());
  EXPECT_EQ(dense_env.plane_memory_bytes(), 2u * 200 * 200 * sizeof(double));
  EXPECT_LT(bytes * 100, dense_env.plane_memory_bytes());
}

TEST(EnvironmentPlaneTest, ProceduralDriftIsBoundedAndMoves) {
  Environment env(32, 3, sparse_config(net::UnderlayKind::kProcedural));
  const double base = env.delays().delay(2, 5);
  bool moved = false;
  double previous = env.true_delay(2, 5);
  for (int step = 0; step < 50; ++step) {
    env.advance(30.0);
    const double now = env.true_delay(2, 5);
    const auto& config = env.substrate()->config();
    EXPECT_GE(now, base * (1.0 - config.delay_drift_cap) - 1e-9);
    EXPECT_LE(now, base * (1.0 + config.delay_drift_cap) + 1e-9);
    moved = moved || now != previous;
    previous = now;
  }
  EXPECT_TRUE(moved);
}

TEST(EnvironmentPlaneTest, IdenticallySeededPlanesLockstepOnBothBackends) {
  for (const auto kind :
       {net::UnderlayKind::kDense, net::UnderlayKind::kProcedural}) {
    auto substrate = std::make_shared<Substrate>(16, 9, sparse_config(kind));
    Environment a(substrate, 21);
    Environment b(substrate, 21);
    for (int step = 0; step < 4; ++step) {
      a.advance(15.0);
      b.advance(15.0);
      for (int i = 0; i < 16; ++i) {
        for (int j = 0; j < 16; ++j) {
          if (i == j) continue;
          EXPECT_DOUBLE_EQ(a.true_delay(i, j), b.true_delay(i, j));
          EXPECT_DOUBLE_EQ(a.measure_delay_ping(i, j),
                           b.measure_delay_ping(i, j));
        }
        EXPECT_DOUBLE_EQ(a.measure_load(i), b.measure_load(i));
        EXPECT_DOUBLE_EQ(a.measure_avail_bw(i, (i + 1) % 16),
                         b.measure_avail_bw(i, (i + 1) % 16));
      }
    }
  }
}

TEST(SubstrateTest, MemoryBytesReflectsBackendChoice) {
  Substrate dense(64, 1, [] {
    EnvironmentConfig c;
    c.coord_warmup_rounds = 5;
    return c;
  }());
  Substrate procedural(64, 1, sparse_config(net::UnderlayKind::kProcedural));
  EXPECT_EQ(dense.underlay_kind(), net::UnderlayKind::kDense);
  EXPECT_EQ(procedural.underlay_kind(), net::UnderlayKind::kProcedural);
  EXPECT_LT(procedural.memory_bytes(), dense.memory_bytes());
  EXPECT_EQ(dense.size(), 64u);
  EXPECT_EQ(procedural.size(), 64u);
}

}  // namespace
}  // namespace egoist::overlay
