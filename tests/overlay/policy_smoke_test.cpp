// Construction smoke test: every Policy x Metric combination must be able
// to build an EgoistNetwork on a fresh Environment and survive one epoch.
// Guards future policy refactors against silently breaking construction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "overlay/network.hpp"

namespace egoist::overlay {
namespace {

const std::vector<Policy> kAllPolicies{
    Policy::kBestResponse, Policy::kHybridBR, Policy::kRandom,
    Policy::kClosest,      Policy::kRegular,  Policy::kFullMesh,
};

const std::vector<Metric> kAllMetrics{
    Metric::kDelayPing,
    Metric::kDelayCoords,
    Metric::kNodeLoad,
    Metric::kBandwidth,
};

TEST(PolicySmokeTest, EveryPolicyConstructsAndRunsOneEpoch) {
  constexpr std::size_t kNodes = 16;
  for (const auto policy : kAllPolicies) {
    for (const auto metric : kAllMetrics) {
      SCOPED_TRACE(std::string(to_string(policy)) + " / " + to_string(metric));
      Environment env(kNodes, /*seed=*/99);
      OverlayConfig config;
      config.policy = policy;
      config.metric = metric;
      config.k = 4;
      config.seed = 99;
      EgoistNetwork net(env, config);
      ASSERT_EQ(net.size(), kNodes);
      ASSERT_EQ(net.online_count(), kNodes);

      env.advance(60.0);
      const int rewirings = net.run_epoch();
      EXPECT_GE(rewirings, 0);
      EXPECT_EQ(net.epochs_run(), 1);

      // Every online node keeps a wiring within its link budget (FullMesh
      // wires to everyone regardless of k) with no self-loops.
      for (std::size_t v = 0; v < kNodes; ++v) {
        const auto& wiring = net.wiring(static_cast<int>(v));
        if (policy == Policy::kFullMesh) {
          EXPECT_EQ(wiring.size(), kNodes - 1);
        } else {
          EXPECT_LE(wiring.size(), config.k);
          EXPECT_GE(wiring.size(), 1u);
        }
        for (const auto u : wiring) {
          EXPECT_NE(u, static_cast<int>(v));
        }
      }

      // Scores over true costs must be finite and sized to the online set.
      const auto costs = net.node_costs();
      ASSERT_EQ(costs.size(), net.online_count());
      for (const double c : costs) {
        EXPECT_TRUE(std::isfinite(c));
      }
    }
  }
}

TEST(PolicySmokeTest, HybridBRKeepsDonatedBackboneLinks) {
  Environment env(12, 5);
  OverlayConfig config;
  config.policy = Policy::kHybridBR;
  config.k = 4;
  config.donated_links = 2;
  config.seed = 5;
  EgoistNetwork net(env, config);
  env.advance(60.0);
  net.run_epoch();
  for (int v = 0; v < 12; ++v) {
    EXPECT_EQ(net.donated(v).size(), config.donated_links);
  }
}

}  // namespace
}  // namespace egoist::overlay
