// Backend equivalence: the CSR path engine must be a pure drop-in for the
// legacy residual-copy path. Distances are bit-identical by construction
// (see tests/graph/path_engine_test.cpp), so two otherwise-identical
// overlays — one per PathBackend — must make identical wiring decisions
// epoch after epoch, for every Policy x Metric combination, through churn,
// audits, free riders, and skewed preferences.
#include <gtest/gtest.h>

#include <sstream>

#include "determinism_harness.hpp"
#include "overlay/network.hpp"

namespace egoist::overlay {
namespace {

bool same_graph(const graph::Digraph& a, const graph::Digraph& b,
                std::string* why) {
  if (a.node_count() != b.node_count()) {
    *why = "node count";
    return false;
  }
  for (std::size_t u = 0; u < a.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    if (a.is_active(uid) != b.is_active(uid)) {
      *why = "active flag of node " + std::to_string(u);
      return false;
    }
    const auto ea = a.out_edges(uid);
    const auto eb = b.out_edges(uid);
    if (ea.size() != eb.size()) {
      *why = "degree of node " + std::to_string(u);
      return false;
    }
    for (std::size_t i = 0; i < ea.size(); ++i) {
      if (ea[i].to != eb[i].to || ea[i].weight != eb[i].weight) {
        std::ostringstream oss;
        oss << "edge " << u << " -> " << ea[i].to << " vs " << eb[i].to;
        *why = oss.str();
        return false;
      }
    }
  }
  return true;
}

struct Deployment {
  Environment env;
  EgoistNetwork net;
  Deployment(std::size_t n, std::uint64_t env_seed, OverlayConfig config)
      : env(n, env_seed), net(env, config) {}
};

void expect_lockstep(OverlayConfig base, const std::string& label,
                     bool with_churn = true) {
  const std::size_t n = 14;
  const std::uint64_t env_seed = 404;
  OverlayConfig engine_cfg = base;
  engine_cfg.path_backend = PathBackend::kCsrEngine;
  OverlayConfig legacy_cfg = base;
  legacy_cfg.path_backend = PathBackend::kLegacy;

  // Two identical substrates: measurement noise streams stay in lockstep
  // as long as both overlays issue the same measurement sequence — which
  // they do exactly while their decisions coincide.
  Deployment engine(n, env_seed, engine_cfg);
  Deployment legacy(n, env_seed, legacy_cfg);

  std::string why;
  ASSERT_TRUE(same_graph(engine.net.announced_graph(),
                         legacy.net.announced_graph(), &why))
      << label << " diverged at bootstrap: " << why;

  for (int epoch = 0; epoch < 6; ++epoch) {
    if (with_churn && epoch == 2) {
      engine.net.set_online(3, false);
      legacy.net.set_online(3, false);
    }
    if (with_churn && epoch == 4) {
      engine.net.set_online(3, true);
      legacy.net.set_online(3, true);
    }
    engine.env.advance(60.0);
    legacy.env.advance(60.0);
    const int rewired_engine = engine.net.run_epoch();
    const int rewired_legacy = legacy.net.run_epoch();
    EXPECT_EQ(rewired_engine, rewired_legacy)
        << label << " rewire count diverged at epoch " << epoch;
    for (std::size_t v = 0; v < n; ++v) {
      const auto engine_wiring = engine.net.wiring(static_cast<int>(v));
      const auto legacy_wiring = legacy.net.wiring(static_cast<int>(v));
      ASSERT_EQ(std::vector<NodeId>(engine_wiring.begin(), engine_wiring.end()),
                std::vector<NodeId>(legacy_wiring.begin(), legacy_wiring.end()))
          << label << " wiring of node " << v << " diverged at epoch " << epoch;
    }
    ASSERT_TRUE(same_graph(engine.net.announced_graph(),
                           legacy.net.announced_graph(), &why))
        << label << " announced graph diverged at epoch " << epoch << ": "
        << why;
  }
}

OverlayConfig make_config(Policy policy, Metric metric) {
  OverlayConfig config;
  config.policy = policy;
  config.metric = metric;
  config.k = 3;
  config.donated_links = 2;
  config.seed = 99;
  return config;
}

TEST(PathBackendEquivalenceTest, EveryPolicyMetricCombination) {
  for (Policy policy :
       {Policy::kBestResponse, Policy::kHybridBR, Policy::kRandom,
        Policy::kClosest, Policy::kRegular, Policy::kFullMesh}) {
    for (Metric metric : {Metric::kDelayPing, Metric::kDelayCoords,
                          Metric::kNodeLoad, Metric::kBandwidth}) {
      const std::string label = std::string(to_string(policy)) + " / " +
                                std::string(to_string(metric));
      expect_lockstep(make_config(policy, metric), label);
    }
  }
}

TEST(PathBackendEquivalenceTest, AuditedDecisionGraph) {
  auto config = make_config(Policy::kBestResponse, Metric::kDelayPing);
  config.enable_audits = true;
  config.cheaters = {2};
  expect_lockstep(config, "BR audited + cheater");
}

TEST(PathBackendEquivalenceTest, SkewedPreferences) {
  auto config = make_config(Policy::kBestResponse, Metric::kDelayCoords);
  config.preference_zipf_exponent = 1.0;
  expect_lockstep(config, "BR zipf preference");
}

TEST(PathBackendEquivalenceTest, ParallelWorkersLockstep) {
  auto config = make_config(Policy::kBestResponse, Metric::kDelayPing);
  config.path_workers = 3;
  expect_lockstep(config, "BR 3-worker engine");
}

TEST(PathBackendEquivalenceTest, ImmediateRewireMode) {
  auto config = make_config(Policy::kHybridBR, Metric::kDelayPing);
  config.rewire_mode = RewireMode::kImmediate;
  expect_lockstep(config, "HybridBR immediate rewire");
}

TEST(PathBackendEquivalenceTest, BackendsAgreeAcrossHostSchedules) {
  // The same equivalence re-proven through the shared trajectory harness:
  // engine vs legacy under the host's synchronized, parallel-pipeline, and
  // staggered-with-churn schedules.
  using egoist::testing::DeterminismCase;
  using egoist::testing::expect_same_trajectory;
  using egoist::testing::record_trajectory;

  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 150.0;
  churn_config.mean_off_s = 50.0;
  churn_config.initial_on_fraction = 0.8;
  const churn::ChurnTrace trace(14, 3 * 60.0, 77, churn_config);

  const auto schedules = {std::string("synchronized"), std::string("pipeline"),
                          std::string("staggered")};
  for (const auto& schedule : schedules) {
    DeterminismCase engine_case;
    engine_case.epochs = 3;
    engine_case.spec = host::OverlaySpec(
        make_config(Policy::kBestResponse, Metric::kDelayPing));
    if (schedule == "pipeline") engine_case.spec.workers(2);
    if (schedule == "staggered") {
      engine_case.spec.epoch_period(60.0).staggered(0xBDu).churn(trace);
    }
    DeterminismCase legacy_case = engine_case;
    engine_case.spec.path_backend(PathBackend::kCsrEngine);
    legacy_case.spec.path_backend(PathBackend::kLegacy);
    expect_same_trajectory(record_trajectory(engine_case),
                           record_trajectory(legacy_case),
                           "backend equivalence / " + schedule);
  }
}

TEST(PathBackendEquivalenceTest, ScoresIdenticalAcrossBackends) {
  auto config = make_config(Policy::kBestResponse, Metric::kDelayPing);
  Deployment engine(14, 404, config);
  config.path_backend = PathBackend::kLegacy;
  Deployment legacy(14, 404, config);
  for (int epoch = 0; epoch < 3; ++epoch) {
    engine.env.advance(60.0);
    legacy.env.advance(60.0);
    engine.net.run_epoch();
    legacy.net.run_epoch();
  }
  EXPECT_EQ(engine.net.node_costs(), legacy.net.node_costs());
  EXPECT_EQ(engine.net.node_efficiencies(), legacy.net.node_efficiencies());
}

}  // namespace
}  // namespace egoist::overlay
