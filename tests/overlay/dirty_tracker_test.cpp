// Unit truth table for overlay::DirtyTracker: which events set which dirty
// bits in which mode, and the drift-probe hysteresis contract. The tracker
// is pure bookkeeping (no network, environment, or RNG access), so these
// tests exercise it directly.
#include "overlay/dirty_tracker.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace egoist::overlay {
namespace {

using graph::Edge;
using graph::NodeId;

TEST(DirtyTrackerTest, ResetSeedsEveryNodeDirty) {
  DirtyTracker t;
  t.reset(5, 0.0);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.dirty_count(), 5u);
  EXPECT_TRUE(t.exact());
  for (std::size_t v = 0; v < 5; ++v) EXPECT_TRUE(t.is_dirty(v));
}

TEST(DirtyTrackerTest, MarkAndClearMaintainTheCount) {
  DirtyTracker t;
  t.reset(4, 0.0);
  for (std::size_t v = 0; v < 4; ++v) t.clear(v);
  EXPECT_EQ(t.dirty_count(), 0u);
  t.clear(1);  // idempotent
  EXPECT_EQ(t.dirty_count(), 0u);
  t.mark(2);
  t.mark(2);  // idempotent
  EXPECT_EQ(t.dirty_count(), 1u);
  EXPECT_TRUE(t.is_dirty(2));
  EXPECT_FALSE(t.is_dirty(1));
  t.mark_all();
  EXPECT_EQ(t.dirty_count(), 4u);
}

TEST(DirtyTrackerTest, ResetSwitchesMode) {
  DirtyTracker t;
  t.reset(3, 0.1);
  EXPECT_FALSE(t.exact());
  EXPECT_DOUBLE_EQ(t.drift_threshold(), 0.1);
  t.reset(3, 0.0);
  EXPECT_TRUE(t.exact());
}

// --- announce_delta_significant ---

TEST(DirtyTrackerTest, ExactModeAnyCostBitIsSignificant) {
  DirtyTracker t;
  t.reset(4, 0.0);
  const std::vector<Edge> old_row = {{1, 10.0}, {2, 20.0}};
  const std::vector<Edge> same = {{1, 10.0}, {2, 20.0}};
  const std::vector<Edge> reordered = {{2, 20.0}, {1, 10.0}};
  const std::vector<Edge> nudged = {{1, 10.0}, {2, 20.0000001}};
  EXPECT_FALSE(t.announce_delta_significant(old_row, same));
  EXPECT_FALSE(t.announce_delta_significant(old_row, reordered));
  EXPECT_TRUE(t.announce_delta_significant(old_row, nudged));
}

TEST(DirtyTrackerTest, EdgeSetChangeIsAlwaysSignificant) {
  DirtyTracker exact;
  exact.reset(4, 0.0);
  DirtyTracker tolerant;
  tolerant.reset(4, 0.5);
  const std::vector<Edge> old_row = {{1, 10.0}, {2, 20.0}};
  const std::vector<Edge> swapped_target = {{1, 10.0}, {3, 20.0}};
  const std::vector<Edge> grew = {{1, 10.0}, {2, 20.0}, {3, 5.0}};
  const std::vector<Edge> shrank = {{1, 10.0}};
  for (DirtyTracker* t : {&exact, &tolerant}) {
    EXPECT_TRUE(t->announce_delta_significant(old_row, swapped_target));
    EXPECT_TRUE(t->announce_delta_significant(old_row, grew));
    EXPECT_TRUE(t->announce_delta_significant(old_row, shrank));
  }
}

TEST(DirtyTrackerTest, ToleranceModeIgnoresSubThresholdCostMoves) {
  DirtyTracker t;
  t.reset(4, 0.1);  // 10% relative band
  const std::vector<Edge> old_row = {{1, 100.0}, {2, 50.0}};
  const std::vector<Edge> within = {{1, 105.0}, {2, 46.0}};
  const std::vector<Edge> beyond = {{1, 115.0}, {2, 50.0}};
  EXPECT_FALSE(t.announce_delta_significant(old_row, within));
  EXPECT_TRUE(t.announce_delta_significant(old_row, beyond));
}

// --- on_membership ---

TEST(DirtyTrackerTest, MembershipInExactModeMarksEveryone) {
  DirtyTracker t;
  t.reset(5, 0.0);
  for (std::size_t v = 0; v < 5; ++v) t.clear(v);
  const std::vector<NodeId> holders = {3};
  t.on_membership(1, /*global_candidates=*/false, holders);
  EXPECT_EQ(t.dirty_count(), 5u);
}

TEST(DirtyTrackerTest, GlobalCandidateMembershipMarksEveryone) {
  DirtyTracker t;
  t.reset(5, 0.2);
  for (std::size_t v = 0; v < 5; ++v) t.clear(v);
  t.on_membership(1, /*global_candidates=*/true, {});
  EXPECT_EQ(t.dirty_count(), 5u);
}

TEST(DirtyTrackerTest, ToleranceMembershipMarksChurnedNodeAndHolders) {
  DirtyTracker t;
  t.reset(5, 0.2);
  for (std::size_t v = 0; v < 5; ++v) t.clear(v);
  const std::vector<NodeId> holders = {0, 3};
  t.on_membership(1, /*global_candidates=*/false, holders);
  EXPECT_TRUE(t.is_dirty(0));
  EXPECT_TRUE(t.is_dirty(1));
  EXPECT_FALSE(t.is_dirty(2));
  EXPECT_TRUE(t.is_dirty(3));
  EXPECT_FALSE(t.is_dirty(4));
}

// --- drift baselines ---

/// fresh[] is indexed by node id in the tracker's contract.
std::vector<double> values_by_id(std::size_t n,
                                 std::initializer_list<std::pair<NodeId, double>>
                                     entries) {
  std::vector<double> v(n, 0.0);
  for (const auto& [id, value] : entries) {
    v[static_cast<std::size_t>(id)] = value;
  }
  return v;
}

TEST(DirtyTrackerTest, DriftWithinThresholdDoesNotTrigger) {
  DirtyTracker t;
  t.reset(4, 0.1);
  const std::vector<NodeId> links = {1, 2};
  t.set_baseline(0, links, values_by_id(4, {{1, 100.0}, {2, 50.0}}));
  EXPECT_FALSE(
      t.drift_exceeded(0, links, values_by_id(4, {{1, 109.0}, {2, 46.0}})));
  EXPECT_TRUE(
      t.drift_exceeded(0, links, values_by_id(4, {{1, 112.0}, {2, 50.0}})));
}

TEST(DirtyTrackerTest, DriftComparesAgainstFixedBaselineUntilReset) {
  // Hysteresis: the baseline does not creep with each probe, so slow drift
  // accumulates until it crosses the band once; re-baselining (the
  // re-evaluation) then re-arms the probe at the new values.
  DirtyTracker t;
  t.reset(3, 0.1);
  const std::vector<NodeId> links = {1};
  t.set_baseline(0, links, values_by_id(3, {{1, 100.0}}));
  EXPECT_FALSE(t.drift_exceeded(0, links, values_by_id(3, {{1, 106.0}})));
  // Probing did not move the baseline: two sub-threshold steps add up.
  EXPECT_TRUE(t.drift_exceeded(0, links, values_by_id(3, {{1, 111.0}})));
  t.set_baseline(0, links, values_by_id(3, {{1, 111.0}}));
  EXPECT_FALSE(t.drift_exceeded(0, links, values_by_id(3, {{1, 106.0}})));
}

TEST(DirtyTrackerTest, LinkWithoutBaselineCountsAsExceeded) {
  DirtyTracker t;
  t.reset(3, 0.1);
  const std::vector<NodeId> baselined = {1};
  t.set_baseline(0, baselined, values_by_id(3, {{1, 100.0}}));
  const std::vector<NodeId> gained = {1, 2};
  EXPECT_TRUE(t.drift_exceeded(
      0, gained, values_by_id(3, {{1, 100.0}, {2, 40.0}})));
}

TEST(DirtyTrackerTest, ExactModeNeverDriftTriggers) {
  DirtyTracker t;
  t.reset(3, 0.0);
  const std::vector<NodeId> links = {1};
  t.set_baseline(0, links, values_by_id(3, {{1, 100.0}}));
  EXPECT_FALSE(t.drift_exceeded(0, links, values_by_id(3, {{1, 500.0}})));
}

}  // namespace
}  // namespace egoist::overlay
