// Determinism stress suite for the parallel BR epoch pipeline.
//
// The pipeline's contract (overlay/epoch_engine.hpp): with epoch_workers
// >= 1, the wiring trajectory is a pure function of the deployment — the
// worker count only changes wall-clock time. This suite pins that down by
// replaying the same seed at workers in {1, 2, 4, 8} across the full
// configuration matrix — BR and HybridBR, dense and procedural underlay
// backends, synchronized and staggered-with-churn schedules, dense and §5
// sampled scale mode — and requiring bit-identical wiring trajectories,
// online sets, scores, and re-wiring counts at every epoch.
#include <gtest/gtest.h>

#include <string>

#include "determinism_harness.hpp"

namespace egoist::testing {
namespace {

using host::OverlaySpec;
using overlay::Metric;
using overlay::Policy;

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

OverlaySpec base_spec(Policy policy, Metric metric) {
  OverlaySpec spec;
  spec.policy(policy).metric(metric).k(3).seed(99);
  if (policy == Policy::kHybridBR) spec.donated_links(2);
  return spec;
}

overlay::EnvironmentConfig env_config(net::UnderlayKind kind) {
  overlay::EnvironmentConfig env;
  env.underlay = kind;
  if (kind == net::UnderlayKind::kProcedural) env.coord_warmup_rounds = 10;
  return env;
}

churn::ChurnTrace make_trace(std::size_t nodes, int epochs) {
  churn::ChurnConfig config;
  config.mean_on_s = 150.0;
  config.mean_off_s = 50.0;
  config.initial_on_fraction = 0.8;
  return churn::ChurnTrace(nodes, epochs * 60.0, 77, config);
}

/// Records the case at every worker count and requires each trajectory to
/// equal the workers=1 one, bit for bit.
void expect_worker_count_invariance(DeterminismCase c, const std::string& label) {
  c.spec.workers(1);
  const Trajectory reference = record_trajectory(c);
  for (int workers : kWorkerCounts) {
    if (workers == 1) continue;
    DeterminismCase parallel = c;
    parallel.spec.workers(workers);
    expect_same_trajectory(reference, record_trajectory(parallel),
                           label + " @ workers=" + std::to_string(workers));
  }
}

TEST(ParallelEpochTest, SynchronizedEpochsAreWorkerCountInvariant) {
  for (Policy policy : {Policy::kBestResponse, Policy::kHybridBR}) {
    for (const auto kind :
         {net::UnderlayKind::kDense, net::UnderlayKind::kProcedural}) {
      DeterminismCase c;
      c.env = env_config(kind);
      c.spec = base_spec(policy, Metric::kDelayPing);
      const std::string label = std::string(to_string(policy)) + " / " +
                                (kind == net::UnderlayKind::kDense
                                     ? "dense"
                                     : "procedural");
      expect_worker_count_invariance(c, label);
    }
  }
}

TEST(ParallelEpochTest, StaggeredChurnedEpochsAreWorkerCountInvariant) {
  // The staggered T/n scheduler evaluates nodes one at a time and churn
  // replays between slots; neither goes through the parallel pipeline, so
  // worker-count invariance must hold trivially — this guards against the
  // pipeline ever leaking into the per-node path.
  for (Policy policy : {Policy::kBestResponse, Policy::kHybridBR}) {
    for (const auto kind :
         {net::UnderlayKind::kDense, net::UnderlayKind::kProcedural}) {
      DeterminismCase c;
      c.epochs = 3;
      c.env = env_config(kind);
      c.spec = base_spec(policy, Metric::kDelayPing)
                   .epoch_period(60.0)
                   .staggered(0xBDu)
                   .churn(make_trace(c.nodes, c.epochs));
      const std::string label = std::string("staggered ") +
                                to_string(policy) + " / " +
                                (kind == net::UnderlayKind::kDense
                                     ? "dense"
                                     : "procedural");
      expect_worker_count_invariance(c, label);
    }
  }
}

TEST(ParallelEpochTest, SynchronizedChurnIsWorkerCountInvariant) {
  // Synchronized epochs with a churn trace: membership flips (which stay
  // sequential and consume RNG) interleave with pipeline epochs.
  DeterminismCase c;
  c.epochs = 4;
  c.spec = base_spec(Policy::kHybridBR, Metric::kDelayPing)
               .epoch_period(60.0)
               .churn(make_trace(c.nodes, c.epochs));
  expect_worker_count_invariance(c, "synchronized churn HybridBR");
}

TEST(ParallelEpochTest, BandwidthMetricIsWorkerCountInvariant) {
  DeterminismCase c;
  c.spec = base_spec(Policy::kBestResponse, Metric::kBandwidth);
  expect_worker_count_invariance(c, "BR bandwidth");
}

TEST(ParallelEpochTest, LegacyPathBackendIsWorkerCountInvariant) {
  // The pipeline must be deterministic on the reference residual-copy
  // backend too, not just the CSR engine.
  DeterminismCase c;
  c.epochs = 3;
  c.spec = base_spec(Policy::kBestResponse, Metric::kDelayPing)
               .path_backend(overlay::PathBackend::kLegacy);
  expect_worker_count_invariance(c, "BR legacy backend");
}

TEST(ParallelEpochTest, ScaleModeIsWorkerCountInvariant) {
  // §5 sampled scale mode: the snapshot phase draws every sample pool and
  // landmark set sequentially, so the sampled pipeline must also be
  // invariant across worker counts.
  for (const auto kind :
       {net::UnderlayKind::kDense, net::UnderlayKind::kProcedural}) {
    DeterminismCase c;
    c.nodes = 24;
    c.epochs = 3;
    c.env = env_config(kind);
    c.env.sparse_plane_threshold = 0;
    overlay::OverlayConfig config;
    config.policy = Policy::kBestResponse;
    config.k = 4;
    config.seed = 5;
    config.br_sample = 8;
    config.br_landmarks = 12;
    c.spec = OverlaySpec(config);
    expect_worker_count_invariance(
        c, kind == net::UnderlayKind::kDense ? "scale dense"
                                             : "scale procedural");
  }
}

TEST(ParallelEpochTest, ZipfPreferencesAndCheatersAreWorkerCountInvariant) {
  // Skewed preferences exercise preference_of() in the workers; cheaters
  // exercise announced-cost inflation during the sequential merge.
  DeterminismCase c;
  c.epochs = 3;
  c.spec = base_spec(Policy::kBestResponse, Metric::kDelayCoords)
               .preference_zipf(1.0)
               .cheaters({2, 5}, 2.0);
  expect_worker_count_invariance(c, "BR zipf + cheaters");
}

TEST(ParallelEpochTest, NonBrPoliciesIgnoreTheWorkerKnob) {
  // The heuristics never enter the pipeline: workers=4 must replay the
  // sequential (workers=0) trajectory exactly, shuffled epoch order and
  // all.
  for (Policy policy : {Policy::kRandom, Policy::kClosest, Policy::kRegular}) {
    DeterminismCase sequential;
    sequential.epochs = 3;
    sequential.spec = base_spec(policy, Metric::kDelayPing).workers(0);
    DeterminismCase parallel = sequential;
    parallel.spec.workers(4);
    expect_same_trajectory(record_trajectory(sequential),
                           record_trajectory(parallel),
                           std::string(to_string(policy)) + " ignores workers");
  }
}

TEST(ParallelEpochTest, PipelineWiringsRespectDegreeAndMembership) {
  DeterminismCase c;
  c.spec = base_spec(Policy::kHybridBR, Metric::kDelayPing).workers(4);
  const auto trajectory = record_trajectory(c);
  for (const auto& epoch : trajectory.wirings) {
    for (const auto& wiring : epoch) {
      EXPECT_LE(wiring.size(), 3u);
      EXPECT_FALSE(wiring.empty());
    }
  }
  // The pipeline actually re-wires (the runs are not vacuous).
  EXPECT_GT(trajectory.rewirings.back(), 0u);
}

TEST(ParallelEpochTest, NegativeWorkerCountIsRejected) {
  overlay::Environment env(12, 1);
  overlay::OverlayConfig config;
  config.k = 3;
  config.epoch_workers = -1;
  EXPECT_THROW(overlay::EgoistNetwork(env, config), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::testing
