// §5 scale-mode contract tests: sampled BR epochs are deterministic,
// respect k, keep the measurement plane at O(probed pairs), work on both
// backends and in the staggered host mode, and the config guards reject
// unsupported combinations.
#include <gtest/gtest.h>

#include <algorithm>

#include "host/overlay_host.hpp"

namespace egoist::overlay {
namespace {

EnvironmentConfig scale_env(net::UnderlayKind kind) {
  EnvironmentConfig config;
  config.underlay = kind;
  config.sparse_plane_threshold = 0;
  config.coord_warmup_rounds = 5;
  return config;
}

OverlayConfig scale_config(Policy policy = Policy::kBestResponse,
                           Metric metric = Metric::kDelayPing) {
  OverlayConfig config;
  config.policy = policy;
  config.metric = metric;
  config.k = 4;
  config.seed = 5;
  config.br_sample = 8;
  config.br_landmarks = 12;
  return config;
}

TEST(ScaleModeTest, RejectsUnsupportedCombinations) {
  Environment env(16, 1, scale_env(net::UnderlayKind::kDense));
  auto bad = scale_config(Policy::kClosest);
  EXPECT_THROW(EgoistNetwork(env, bad), std::invalid_argument);
  bad = scale_config();
  bad.br_landmarks = 0;
  EXPECT_THROW(EgoistNetwork(env, bad), std::invalid_argument);
  bad = scale_config();
  bad.preference_zipf_exponent = 1.0;
  EXPECT_THROW(EgoistNetwork(env, bad), std::invalid_argument);
  bad = scale_config();
  bad.enable_audits = true;
  EXPECT_THROW(EgoistNetwork(env, bad), std::invalid_argument);
}

TEST(ScaleModeTest, EpochsAreDeterministicAndRespectK) {
  for (const auto kind :
       {net::UnderlayKind::kDense, net::UnderlayKind::kProcedural}) {
    auto run = [&](int epochs) {
      Environment env(40, 7, scale_env(kind));
      EgoistNetwork net(env, scale_config());
      for (int e = 0; e < epochs; ++e) {
        env.advance(60.0);
        net.run_epoch();
      }
      std::vector<std::vector<NodeId>> wirings;
      for (int v = 0; v < 40; ++v) {
        const auto wiring = net.wiring(v);
        wirings.emplace_back(wiring.begin(), wiring.end());
      }
      return std::make_pair(wirings, net.total_rewirings());
    };
    const auto [wirings_a, rewired_a] = run(3);
    const auto [wirings_b, rewired_b] = run(3);
    EXPECT_EQ(wirings_a, wirings_b);
    EXPECT_EQ(rewired_a, rewired_b);
    for (const auto& wiring : wirings_a) {
      EXPECT_LE(wiring.size(), 4u);
      EXPECT_FALSE(wiring.empty());
    }
  }
}

TEST(ScaleModeTest, MeasurementStaysWithinSampledPairs) {
  // Every node probes at most its pool (sample + committed links) per
  // evaluation: the sparse plane must stay far below n^2.
  constexpr std::size_t kN = 120;
  Environment env(kN, 11, scale_env(net::UnderlayKind::kProcedural));
  auto config = scale_config();
  EgoistNetwork net(env, config);
  env.advance(60.0);
  net.run_epoch();
  ASSERT_TRUE(env.sparse_plane());
  // Bootstrap (two join passes) + one epoch: <= ~3 pools per node, each
  // pool at most sample + k links (plus their reverse probes is not a
  // thing — pings are directed).
  const std::size_t per_node_budget = 3 * (config.br_sample + config.k + 1);
  EXPECT_LT(env.probed_pairs(), kN * per_node_budget);
  EXPECT_LT(env.probed_pairs(), kN * (kN - 1) / 2);
}

TEST(ScaleModeTest, HybridBRKeepsDonatedBackboneLinks) {
  Environment env(30, 3, scale_env(net::UnderlayKind::kProcedural));
  auto config = scale_config(Policy::kHybridBR);
  config.donated_links = 2;
  EgoistNetwork net(env, config);
  env.advance(60.0);
  net.run_epoch();
  for (int v = 0; v < 30; ++v) {
    EXPECT_EQ(net.donated(v).size(), 2u);
    for (const NodeId d : net.donated(v)) {
      const auto& wiring = net.wiring(v);
      EXPECT_NE(std::find(wiring.begin(), wiring.end(), d), wiring.end())
          << "donated link " << d << " missing from node " << v;
    }
  }
}

TEST(ScaleModeTest, BandwidthMetricRunsOnWidestLandmarks) {
  Environment env(24, 13, scale_env(net::UnderlayKind::kProcedural));
  EgoistNetwork net(env, scale_config(Policy::kBestResponse,
                                      Metric::kBandwidth));
  env.advance(60.0);
  EXPECT_NO_THROW(net.run_epoch());
  for (int v = 0; v < 24; ++v) EXPECT_FALSE(net.wiring(v).empty());
}

TEST(ScaleModeTest, RunNodeWorksOutsideEpochs) {
  Environment env(24, 17, scale_env(net::UnderlayKind::kProcedural));
  EgoistNetwork net(env, scale_config());
  env.advance(60.0);
  EXPECT_NO_THROW(net.run_node(5));
  // Churn paths (set_online + immediate repair) stay functional.
  net.set_online(5, false);
  net.set_online(5, true);
  EXPECT_TRUE(net.is_online(5));
}

TEST(ScaleModeTest, StaggeredHostDriverCompletesEpochs) {
  host::OverlayHost host(20, 23, scale_env(net::UnderlayKind::kProcedural));
  auto spec = host::OverlaySpec(scale_config())
                  .epoch_period(60.0)
                  .staggered(/*order_seed=*/3);
  const auto overlay = host.deploy(spec);
  host.run_epochs(overlay, 2);
  EXPECT_EQ(host.epochs_run(overlay), 2);
  const auto snapshot = host.snapshot(overlay);
  for (int v = 0; v < 20; ++v) EXPECT_FALSE(snapshot.wiring(v).empty());
}

}  // namespace
}  // namespace egoist::overlay
