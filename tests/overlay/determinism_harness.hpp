// Shared trajectory-determinism harness.
//
// Several suites prove the same property from different angles: two runs
// that should be indistinguishable (different path backend, different
// epoch worker count, shared vs solo host) must produce bit-identical
// wiring trajectories and scores. This harness is the common vocabulary:
// describe a deployment as a DeterminismCase, record its full Trajectory
// (per-epoch wirings, scores, re-wiring counts), and compare records with
// expect_same_trajectory for a field-by-field diagnostic on divergence.
//
// Recording drives the deployment through host::OverlayHost epoch by
// epoch, so synchronized, staggered-T/n, and churned schedules all replay
// exactly as the experiment layer runs them.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "churn/churn.hpp"
#include "host/overlay_host.hpp"
#include "host/route_service.hpp"
#include "util/rng.hpp"

namespace egoist::testing {

/// One reproducible deployment: a spec on a host with a fixed substrate.
struct DeterminismCase {
  std::size_t nodes = 14;
  std::uint64_t host_seed = 11;
  overlay::EnvironmentConfig env;
  host::OverlaySpec spec;
  int epochs = 5;
};

/// Everything observable about a run, epoch by epoch.
struct Trajectory {
  /// wirings[e][v] = node v's wiring after epoch e (offline nodes empty).
  std::vector<std::vector<std::vector<graph::NodeId>>> wirings;
  /// online[e] = the online set after epoch e.
  std::vector<std::vector<graph::NodeId>> online;
  /// costs[e] = per-node scores after epoch e (routing cost, bit-exact).
  std::vector<std::vector<double>> costs;
  /// rewirings[e] = cumulative engine re-wiring count after epoch e.
  std::vector<std::uint64_t> rewirings;
};

/// Records the deployment's trajectory. With `serve_readers > 0`, a
/// host::RouteService is attached and that many reader threads hammer
/// route/path/score queries for the whole run — the serve-while-epoching
/// lockstep check: queries are pure reads over published snapshots, so the
/// recorded trajectory must be bit-identical to a run with no readers.
inline Trajectory record_trajectory(const DeterminismCase& c,
                                    int serve_readers = 0) {
  host::OverlayHost host(c.nodes, c.host_seed, c.env);
  const auto handle = host.deploy(c.spec);

  std::unique_ptr<host::RouteService> service;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  if (serve_readers > 0) {
    service = std::make_unique<host::RouteService>(host, handle);
    for (int r = 0; r < serve_readers; ++r) {
      readers.emplace_back([&, r] {
        util::Rng rng(0xD15E4Dull + static_cast<std::uint64_t>(r));
        const auto n = static_cast<std::int64_t>(c.nodes);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto src = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
          const auto dst = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
          const auto pinned = service->acquire();
          (void)pinned.route(src, dst);
          (void)pinned.path(src, dst);
          (void)pinned.score(src);
        }
      });
    }
  }

  Trajectory out;
  for (int epoch = 0; epoch < c.epochs; ++epoch) {
    host.run_epochs(handle, 1);
    const auto snap = host.snapshot(handle);
    std::vector<std::vector<graph::NodeId>> wirings;
    wirings.reserve(c.nodes);
    for (std::size_t v = 0; v < c.nodes; ++v) {
      wirings.push_back(snap.wiring(static_cast<int>(v)));
    }
    out.wirings.push_back(std::move(wirings));
    out.online.push_back(snap.online_nodes());
    out.costs.push_back(c.spec.config().metric == overlay::Metric::kBandwidth
                            ? snap.node_bandwidth_scores()
                            : snap.node_costs());
    out.rewirings.push_back(snap.total_rewirings());
  }

  if (serve_readers > 0) {
    stop.store(true, std::memory_order_relaxed);
    for (auto& reader : readers) reader.join();
    service.reset();  // unsubscribes + final reclaim before the host dies
  }
  return out;
}

/// Bit-identical comparison with a per-epoch, per-node diagnostic.
inline void expect_same_trajectory(const Trajectory& expected,
                                   const Trajectory& actual,
                                   const std::string& label) {
  ASSERT_EQ(expected.wirings.size(), actual.wirings.size())
      << label << ": epoch count";
  for (std::size_t e = 0; e < expected.wirings.size(); ++e) {
    ASSERT_EQ(expected.online[e], actual.online[e])
        << label << ": online set diverged at epoch " << e;
    ASSERT_EQ(expected.wirings[e].size(), actual.wirings[e].size());
    for (std::size_t v = 0; v < expected.wirings[e].size(); ++v) {
      ASSERT_EQ(expected.wirings[e][v], actual.wirings[e][v])
          << label << ": wiring of node " << v << " diverged at epoch " << e;
    }
    ASSERT_EQ(expected.costs[e], actual.costs[e])
        << label << ": scores diverged at epoch " << e;
    ASSERT_EQ(expected.rewirings[e], actual.rewirings[e])
        << label << ": re-wiring count diverged at epoch " << e;
  }
}

}  // namespace egoist::testing
