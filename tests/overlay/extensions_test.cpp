// Tests for the paper's optional/extension mechanisms: MST backbones,
// immediate re-wiring, and coordinate-based cheating audits.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "overlay/network.hpp"
#include "util/stats.hpp"

namespace egoist::overlay {
namespace {

OverlayConfig hybrid_config(Backbone backbone, std::uint64_t seed) {
  OverlayConfig config;
  config.policy = Policy::kHybridBR;
  config.k = 5;
  config.donated_links = 2;
  config.backbone = backbone;
  config.seed = seed;
  return config;
}

TEST(MstBackboneTest, BackboneIsConnectedAndBounded) {
  Environment env(20, 61);
  EgoistNetwork net(env, hybrid_config(Backbone::kMst, 61));
  graph::Digraph backbone(20);
  for (int v = 0; v < 20; ++v) {
    EXPECT_LE(net.donated(v).size(), 2u);
    for (graph::NodeId d : net.donated(v)) backbone.set_edge(v, d, 1.0);
  }
  // Tree edges donated from both endpoints keep the mesh weakly connected.
  EXPECT_TRUE(graph::is_weakly_connected(backbone));
}

TEST(MstBackboneTest, SplicesAfterChurn) {
  Environment env(16, 63);
  EgoistNetwork net(env, hybrid_config(Backbone::kMst, 63));
  net.set_online(4, false);
  net.set_online(9, false);
  for (int v = 0; v < 16; ++v) {
    if (!net.is_online(v)) continue;
    for (graph::NodeId d : net.donated(v)) {
      EXPECT_TRUE(net.is_online(d)) << "donated link to dead node";
    }
  }
}

TEST(ImmediateRewireTest, RepairsWithoutWaitingForEpoch) {
  Environment env(18, 65);
  OverlayConfig config;
  config.policy = Policy::kBestResponse;
  config.k = 3;
  config.seed = 65;
  config.rewire_mode = RewireMode::kImmediate;
  EgoistNetwork net(env, config);
  // Find a node that is someone's neighbor and kill it.
  const int victim = net.wiring(0).front();
  net.set_online(victim, false);
  // Without running an epoch, no online node still points at the victim.
  for (int v = 0; v < 18; ++v) {
    if (!net.is_online(v)) continue;
    const auto& w = net.wiring(v);
    EXPECT_EQ(std::find(w.begin(), w.end(), victim), w.end())
        << "node " << v << " still wired to dead neighbor";
  }
  EXPECT_TRUE(graph::is_strongly_connected(net.true_cost_graph()));
}

TEST(ImmediateRewireTest, DelayedModeWaitsForEpoch) {
  Environment env(18, 65);
  OverlayConfig config;
  config.policy = Policy::kBestResponse;
  config.k = 3;
  config.seed = 65;
  config.rewire_mode = RewireMode::kDelayed;
  EgoistNetwork net(env, config);
  const int victim = net.wiring(0).front();
  net.set_online(victim, false);
  // Delayed mode: stale links persist until the next epoch...
  bool any_stale = false;
  for (int v = 0; v < 18 && !any_stale; ++v) {
    if (!net.is_online(v)) continue;
    const auto& w = net.wiring(v);
    any_stale = std::find(w.begin(), w.end(), victim) != w.end();
  }
  EXPECT_TRUE(any_stale);
  // ...and the epoch repairs them.
  net.run_epoch();
  for (int v = 0; v < 18; ++v) {
    if (!net.is_online(v)) continue;
    const auto& w = net.wiring(v);
    EXPECT_EQ(std::find(w.begin(), w.end(), victim), w.end());
  }
}

TEST(AuditTest, AuditsNeutralizeInflatedAnnouncements) {
  // A cheater inflating 4x is flagrant enough for coordinate audits to
  // catch; with audits on, other nodes treat its links at their estimated
  // (true-ish) cost, so the overlay keeps using it as a relay.
  const std::size_t n = 30;
  const std::uint64_t seed = 67;
  auto run = [&](bool audits) {
    Environment env(n, seed);
    OverlayConfig config;
    config.policy = Policy::kBestResponse;
    config.k = 3;
    config.seed = seed;
    config.cheaters = {2};
    config.cheat_factor = 4.0;
    config.enable_audits = audits;
    config.audit_tolerance = 1.5;
    EgoistNetwork net(env, config);
    for (int e = 0; e < 6; ++e) {
      env.advance(60.0);
      net.run_epoch();
    }
    // How many nodes route through the cheater (it appears in wirings)?
    int in_degree = 0;
    for (int v = 0; v < static_cast<int>(n); ++v) {
      const auto& w = net.wiring(v);
      if (std::find(w.begin(), w.end(), 2) != w.end()) ++in_degree;
    }
    return std::pair<int, double>{in_degree,
                                  util::Summary::of(net.node_costs()).mean};
  };
  const auto [unaudited_degree, unaudited_cost] = run(false);
  const auto [audited_degree, audited_cost] = run(true);
  // With audits the cheater is at least as attractive as without.
  EXPECT_GE(audited_degree, unaudited_degree);
  // And the overall cost does not get worse.
  EXPECT_LE(audited_cost, unaudited_cost * 1.1);
}

TEST(PreferenceSkewTest, NegativeExponentRejected) {
  Environment env(10, 71);
  OverlayConfig config;
  config.policy = Policy::kBestResponse;
  config.k = 3;
  config.preference_zipf_exponent = -1.0;
  EXPECT_THROW(EgoistNetwork(env, config), std::invalid_argument);
}

TEST(PreferenceSkewTest, BrStillDominatesUnderSkew) {
  const std::size_t n = 24;
  const std::uint64_t seed = 73;
  auto run = [&](Policy policy) {
    Environment env(n, seed);
    OverlayConfig config;
    config.policy = policy;
    config.k = 3;
    config.seed = seed;
    config.preference_zipf_exponent = 1.2;
    EgoistNetwork net(env, config);
    for (int e = 0; e < 6; ++e) {
      env.advance(60.0);
      net.run_epoch();
    }
    return util::Summary::of(net.node_costs()).mean;
  };
  EXPECT_LT(run(Policy::kBestResponse), run(Policy::kRandom));
  EXPECT_LT(run(Policy::kBestResponse), run(Policy::kRegular));
}

TEST(PreferenceSkewTest, SkewAmplifiesBrAdvantage) {
  // Footnote 8: uniform preferences are conservative for BR — with skewed
  // traffic BR spends links on the destinations that matter; k-Regular
  // cannot. Compare the BR : k-Regular cost ratio with and without skew.
  const std::size_t n = 24;
  const std::uint64_t seed = 75;
  auto ratio = [&](double exponent) {
    auto run = [&](Policy policy) {
      Environment env(n, seed);
      OverlayConfig config;
      config.policy = policy;
      config.k = 3;
      config.seed = seed;
      config.preference_zipf_exponent = exponent;
      EgoistNetwork net(env, config);
      for (int e = 0; e < 6; ++e) {
        env.advance(60.0);
        net.run_epoch();
      }
      return util::Summary::of(net.node_costs()).mean;
    };
    return run(Policy::kRegular) / run(Policy::kBestResponse);
  };
  // Allow a little noise slack; the skewed advantage must not shrink much.
  EXPECT_GT(ratio(1.5), ratio(0.0) * 0.9);
}

TEST(AuditTest, AuditsIgnoredForBandwidthMetric) {
  Environment env(12, 69);
  OverlayConfig config;
  config.policy = Policy::kBestResponse;
  config.metric = Metric::kBandwidth;
  config.k = 3;
  config.seed = 69;
  config.enable_audits = true;  // no coordinate system for bandwidth
  EgoistNetwork net(env, config);
  EXPECT_NO_THROW(net.run_epoch());
}

}  // namespace
}  // namespace egoist::overlay
