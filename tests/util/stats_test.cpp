#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace egoist::util {
namespace {

TEST(SummaryTest, EmptySampleIsZeroed) {
  const auto s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.ci95, 0.0);
}

TEST(SummaryTest, SingleValue) {
  const auto s = Summary::of({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(SummaryTest, KnownSample) {
  const auto s = Summary::of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.ci95, 1.96 * 2.13809 / std::sqrt(8.0), 1e-4);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 17.5);
}

TEST(PercentileTest, UnsortedInputHandled) {
  std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(PercentileTest, Rejections) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(OnlineStatsTest, MatchesBatchSummary) {
  const std::vector<double> v{1.5, -2.0, 3.25, 0.0, 9.5};
  OnlineStats acc;
  for (double x : v) acc.add(x);
  const auto batch = Summary::of(v);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_NEAR(acc.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), batch.stddev, 1e-12);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats acc;
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(EwmaTest, FirstUpdateSetsValue) {
  Ewma e(60.0);
  EXPECT_FALSE(e.has_value());
  e.update(3.0, 0.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 3.0);
}

TEST(EwmaTest, HalfLifeWeighting) {
  Ewma e(60.0);
  e.update(0.0, 0.0);
  // One half-life later a new reading should count exactly 50%.
  e.update(10.0, 60.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(EwmaTest, RapidUpdatesBarelyMove) {
  Ewma e(60.0);
  e.update(0.0, 0.0);
  e.update(100.0, 0.001);  // essentially zero elapsed time
  EXPECT_LT(e.value(), 0.01);
}

TEST(EwmaTest, LongGapAdoptsNewValue) {
  Ewma e(60.0);
  e.update(0.0, 0.0);
  e.update(10.0, 6000.0);  // 100 half-lives: old value fully decayed
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(EwmaTest, RejectsNonPositiveHalfLife) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::util
