#include "util/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace egoist::util {
namespace {

TEST(WorkerPoolTest, ResolveAutoIsAtLeastOne) {
  EXPECT_GE(WorkerPool::resolve(0), 1);
}

TEST(WorkerPoolTest, ResolveTakesPositiveLiterally) {
  EXPECT_EQ(WorkerPool::resolve(1), 1);
  EXPECT_EQ(WorkerPool::resolve(7), 7);
}

TEST(WorkerPoolTest, ResolveNegativeThrows) {
  EXPECT_THROW(WorkerPool::resolve(-1), std::invalid_argument);
}

TEST(WorkerPoolTest, ZeroWorkersThrows) {
  EXPECT_THROW(WorkerPool pool(0), std::invalid_argument);
}

TEST(WorkerPoolTest, SizeOnePoolRunsOnCallingThread) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.run(seen.size(), [&](std::size_t task, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    seen[task] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(WorkerPoolTest, EveryTaskRunsExactlyOnceAtEveryPoolSize) {
  for (int threads : {1, 2, 4, 8}) {
    WorkerPool pool(threads);
    ASSERT_EQ(pool.size(), threads);
    constexpr std::size_t kTasks = 257;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.run(kTasks, [&](std::size_t task, std::size_t worker) {
      ASSERT_LT(worker, static_cast<std::size_t>(threads));
      hits[task].fetch_add(1);
    });
    for (std::size_t t = 0; t < kTasks; ++t) {
      EXPECT_EQ(hits[t].load(), 1) << "task " << t << " threads " << threads;
    }
  }
}

TEST(WorkerPoolTest, DisjointSlotOutputsAreIdenticalAcrossPoolSizes) {
  constexpr std::size_t kTasks = 100;
  auto run_at = [&](int threads) {
    WorkerPool pool(threads);
    std::vector<std::uint64_t> out(kTasks, 0);
    pool.run(kTasks, [&](std::size_t task, std::size_t) {
      std::uint64_t v = task + 1;
      for (int i = 0; i < 50; ++i) v = v * 6364136223846793005ULL + 1442695040888963407ULL;
      out[task] = v;
    });
    return out;
  };
  const auto baseline = run_at(1);
  EXPECT_EQ(run_at(2), baseline);
  EXPECT_EQ(run_at(4), baseline);
  EXPECT_EQ(run_at(8), baseline);
}

TEST(WorkerPoolTest, PoolIsReusableAcrossBatches) {
  WorkerPool pool(4);
  std::vector<int> out(32, 0);
  for (int batch = 0; batch < 5; ++batch) {
    pool.run(out.size(),
             [&](std::size_t task, std::size_t) { out[task] += 1; });
  }
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 5 * 32);
}

TEST(WorkerPoolTest, ZeroTasksIsANoop) {
  WorkerPool pool(4);
  bool ran = false;
  pool.run(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPoolTest, LowestTaskIndexExceptionWinsAtAnyPoolSize) {
  for (int threads : {1, 2, 4, 8}) {
    WorkerPool pool(threads);
    std::atomic<int> completed{0};
    try {
      pool.run(64, [&](std::size_t task, std::size_t) {
        if (task == 11 || task == 37) {
          throw std::runtime_error("task " + std::to_string(task));
        }
        completed.fetch_add(1);
      });
      FAIL() << "expected run() to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 11") << "threads " << threads;
    }
    // The batch drains before rethrowing: every non-throwing task still ran.
    EXPECT_EQ(completed.load(), 62) << "threads " << threads;
  }
}

TEST(WorkerPoolTest, PoolSurvivesAFailedBatch) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.run(8, [](std::size_t, std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> ran{0};
  pool.run(8, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace egoist::util
