#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

namespace egoist::util {
namespace {

TEST(TableTest, RejectsEmptyColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(TableTest, CsvOutput) {
  Table t({"k", "cost"});
  t.add_numeric_row({2.0, 1.2345}, 2);
  t.add_numeric_row({3.0, 0.5}, 2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "k,cost\n2.00,1.23\n3.00,0.50\n");
}

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"k", "value"});
  t.add_row({"2", "1.0"});
  t.add_row({"10", "123.456"});
  std::ostringstream os;
  t.write_ascii(os);
  const std::string out = os.str();
  // Header, separator, and two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("123.456"), std::string::npos);
}

TEST(TableTest, NanRendersAsDash) {
  EXPECT_EQ(Table::format(std::nan(""), 3), "-");
}

TEST(TableTest, FormatPrecision) {
  EXPECT_EQ(Table::format(1.23456, 3), "1.235");
  EXPECT_EQ(Table::format(2.0, 1), "2.0");
}

TEST(TableTest, NumericColumnsRightAlignIncludingNanAndNegatives) {
  Table t({"k", "delta"});
  t.add_numeric_row({2.0, -1.5}, 2);
  t.add_numeric_row({10.0, std::nan("")}, 2);
  std::ostringstream os;
  t.write_ascii(os);
  // Signs, dashes and decimal points line up on the right edge.
  EXPECT_EQ(os.str(),
            "    k  delta\n"
            "------------\n"
            " 2.00  -1.50\n"
            "10.00      -\n");
}

TEST(TableTest, TextColumnsLeftAlignHeaderIncluded) {
  Table t({"policy", "cost"});
  t.add_row({"BR", "74.30"});
  t.add_row({"k-Random", "459.60"});
  std::ostringstream os;
  t.write_ascii(os);
  EXPECT_EQ(os.str(),
            "policy      cost\n"
            "----------------\n"
            "BR         74.30\n"
            "k-Random  459.60\n");
}

TEST(TableTest, TrailingTextColumnHasNoPadding) {
  Table t({"n", "note"});
  t.add_row({"1", "ok"});
  t.add_row({"2", "longer note"});
  std::ostringstream os;
  t.write_ascii(os);
  EXPECT_EQ(os.str(),
            "n  note\n"
            "--------------\n"
            "1  ok\n"
            "2  longer note\n");
}

TEST(TableTest, ScientificNotationCountsAsNumeric) {
  Table t({"x"});
  t.add_row({"1e-05"});
  t.add_row({"-2.5e+03"});
  std::ostringstream os;
  t.write_ascii(os);
  EXPECT_EQ(os.str(),
            "       x\n"
            "--------\n"
            "   1e-05\n"
            "-2.5e+03\n");
}

TEST(TableTest, RowAndColumnCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace egoist::util
