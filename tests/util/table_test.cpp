#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

namespace egoist::util {
namespace {

TEST(TableTest, RejectsEmptyColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(TableTest, CsvOutput) {
  Table t({"k", "cost"});
  t.add_numeric_row({2.0, 1.2345}, 2);
  t.add_numeric_row({3.0, 0.5}, 2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "k,cost\n2.00,1.23\n3.00,0.50\n");
}

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"k", "value"});
  t.add_row({"2", "1.0"});
  t.add_row({"10", "123.456"});
  std::ostringstream os;
  t.write_ascii(os);
  const std::string out = os.str();
  // Header, separator, and two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("123.456"), std::string::npos);
}

TEST(TableTest, NanRendersAsDash) {
  EXPECT_EQ(Table::format(std::nan(""), 3), "-");
}

TEST(TableTest, FormatPrecision) {
  EXPECT_EQ(Table::format(1.23456, 3), "1.235");
  EXPECT_EQ(Table::format(2.0, 1), "2.0");
}

TEST(TableTest, RowAndColumnCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace egoist::util
