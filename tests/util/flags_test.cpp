#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace egoist::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const auto f = make({"--n=50", "--t=1.5"});
  EXPECT_EQ(f.get_int("n", 0), 50);
  EXPECT_DOUBLE_EQ(f.get_double("t", 0.0), 1.5);
}

TEST(FlagsTest, SpaceForm) {
  const auto f = make({"--name", "value"});
  EXPECT_EQ(f.get_string("name", ""), "value");
}

TEST(FlagsTest, BooleanSwitch) {
  const auto f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x"));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x"), std::invalid_argument);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_string("s", "d"), "d");
  EXPECT_EQ(f.get_seed("seed", 99u), 99u);
}

TEST(FlagsTest, RejectsPositionalArgument) {
  EXPECT_THROW(make({"oops"}), std::invalid_argument);
}

TEST(FlagsTest, RejectsNonNumeric) {
  EXPECT_THROW(make({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--t=xy"}).get_double("t", 0.0), std::invalid_argument);
}

TEST(FlagsTest, UnqueriedFlagsReported) {
  const auto f = make({"--typo=1", "--n=5"});
  EXPECT_EQ(f.get_int("n", 0), 5);
  const auto leftover = f.unqueried();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover.front(), "typo");
}

TEST(FlagsTest, HelpRequested) {
  EXPECT_TRUE(make({"--help"}).help_requested());
  EXPECT_TRUE(make({"--help=true"}).help_requested());
  EXPECT_FALSE(make({}).help_requested());
  // Explicit false-ish values mean "no help", mirroring get_bool.
  EXPECT_FALSE(make({"--help=false"}).help_requested());
  EXPECT_FALSE(make({"--help=0"}).help_requested());
  EXPECT_FALSE(make({"--help=no"}).help_requested());
}

TEST(FlagsTest, UsageListsQueriedFlagsWithDefaults) {
  const auto f = make({});
  f.get_int("n", 50);
  f.get_double("t", 1.5);
  f.get_string("name", "br");
  f.get_bool("verbose");
  f.get_seed("seed", 42u);
  const auto usage = f.usage();
  EXPECT_NE(usage.find("--n  (default: 50)"), std::string::npos);
  EXPECT_NE(usage.find("--t  (default: 1.5)"), std::string::npos);
  EXPECT_NE(usage.find("--name  (default: br)"), std::string::npos);
  EXPECT_NE(usage.find("--verbose  (default: false)"), std::string::npos);
  EXPECT_NE(usage.find("--seed  (default: 42)"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(FlagsTest, FinishThrowsOnUnknownFlag) {
  const auto f = make({"--typo=1"});
  EXPECT_THROW(f.finish(), std::invalid_argument);
}

TEST(FlagsTest, FinishSuggestsClosestKnownFlag) {
  const auto f = make({"--sampel=3"});
  f.get_int("sample", 10);
  f.get_int("warmup", 20);
  try {
    f.finish();
    FAIL() << "finish() must reject the typo";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown flag: --sampel"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean --sample?"), std::string::npos) << what;
  }
}

TEST(FlagsTest, FinishOmitsSuggestionWhenNothingIsClose) {
  const auto f = make({"--zzqqxx=1"});
  f.get_int("n", 5);
  try {
    f.finish();
    FAIL() << "finish() must reject the unknown flag";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(ClosestNameTest, PicksMinimumEditDistanceWithinCutoff) {
  const std::vector<std::string> candidates{"sample", "warmup", "seed"};
  ASSERT_TRUE(closest_name("sampel", candidates).has_value());
  EXPECT_EQ(*closest_name("sampel", candidates), "sample");
  EXPECT_EQ(*closest_name("warmups", candidates), "warmup");
  EXPECT_EQ(*closest_name("sed", candidates), "seed");
  EXPECT_FALSE(closest_name("completely-different", candidates).has_value());
  EXPECT_FALSE(closest_name("x", {}).has_value());
}

TEST(FlagsTest, ConsumeAllReturnsEverythingAndSatisfiesFinish) {
  const auto f = make({"--a=1", "--b", "two"});
  const auto all = f.consume_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(all[1], (std::pair<std::string, std::string>{"b", "two"}));
  EXPECT_TRUE(f.unqueried().empty());
}

TEST(FlagsTest, FinishAcceptsQueriedAndExplicitNoHelp) {
  const auto f = make({"--n=5", "--help=false"});
  EXPECT_EQ(f.get_int("n", 0), 5);
  EXPECT_NO_THROW(f.finish());
}

TEST(FlagsDeathTest, FinishOnHelpPrintsUsageAndExitsZero) {
  const auto f = make({"--help"});
  f.get_int("n", 50);
  EXPECT_EXIT(f.finish("prog description"), ::testing::ExitedWithCode(0),
              "");
}

}  // namespace
}  // namespace egoist::util
