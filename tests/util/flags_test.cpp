#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace egoist::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const auto f = make({"--n=50", "--t=1.5"});
  EXPECT_EQ(f.get_int("n", 0), 50);
  EXPECT_DOUBLE_EQ(f.get_double("t", 0.0), 1.5);
}

TEST(FlagsTest, SpaceForm) {
  const auto f = make({"--name", "value"});
  EXPECT_EQ(f.get_string("name", ""), "value");
}

TEST(FlagsTest, BooleanSwitch) {
  const auto f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x"));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x"), std::invalid_argument);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_string("s", "d"), "d");
  EXPECT_EQ(f.get_seed("seed", 99u), 99u);
}

TEST(FlagsTest, RejectsPositionalArgument) {
  EXPECT_THROW(make({"oops"}), std::invalid_argument);
}

TEST(FlagsTest, RejectsNonNumeric) {
  EXPECT_THROW(make({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--t=xy"}).get_double("t", 0.0), std::invalid_argument);
}

TEST(FlagsTest, UnqueriedFlagsReported) {
  const auto f = make({"--typo=1", "--n=5"});
  EXPECT_EQ(f.get_int("n", 0), 5);
  const auto leftover = f.unqueried();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover.front(), "typo");
}

}  // namespace
}  // namespace egoist::util
