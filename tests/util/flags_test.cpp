#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace egoist::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const auto f = make({"--n=50", "--t=1.5"});
  EXPECT_EQ(f.get_int("n", 0), 50);
  EXPECT_DOUBLE_EQ(f.get_double("t", 0.0), 1.5);
}

TEST(FlagsTest, SpaceForm) {
  const auto f = make({"--name", "value"});
  EXPECT_EQ(f.get_string("name", ""), "value");
}

TEST(FlagsTest, BooleanSwitch) {
  const auto f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x"));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x"), std::invalid_argument);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_string("s", "d"), "d");
  EXPECT_EQ(f.get_seed("seed", 99u), 99u);
}

TEST(ParseDurationTest, SuffixedForms) {
  EXPECT_DOUBLE_EQ(parse_duration_seconds("5s"), 5.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("250ms"), 0.25);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("10us"), 1e-5);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("100ns"), 1e-7);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("2m"), 120.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("2min"), 120.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("1.5h"), 5400.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("3"), 3.0);     // bare = seconds
  EXPECT_DOUBLE_EQ(parse_duration_seconds("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("0s"), 0.0);
}

TEST(ParseDurationTest, RejectsMalformed) {
  for (const char* bad : {"", "s", "5x", "5 s", "-1s", "1.2.3s", "ms",
                          "nan", "infs", "5sms"}) {
    EXPECT_THROW(parse_duration_seconds(bad), std::invalid_argument) << bad;
  }
}

TEST(ParseSizeTest, SuffixedForms) {
  EXPECT_EQ(parse_size_bytes("4096"), 4096u);
  EXPECT_EQ(parse_size_bytes("64K"), 64u * 1024u);
  EXPECT_EQ(parse_size_bytes("64KB"), 64u * 1024u);
  EXPECT_EQ(parse_size_bytes("64k"), 64u * 1024u);
  EXPECT_EQ(parse_size_bytes("8M"), 8u << 20);
  EXPECT_EQ(parse_size_bytes("1G"), 1u << 30);
  EXPECT_EQ(parse_size_bytes("1.5M"), (1u << 20) + (1u << 19));
  EXPECT_EQ(parse_size_bytes("0"), 0u);
}

TEST(ParseSizeTest, RejectsMalformed) {
  // Fractional byte counts only pass when the product is whole.
  for (const char* bad : {"", "K", "1.5", "64Q", "-1K", "1e30G", "64 K"}) {
    EXPECT_THROW(parse_size_bytes(bad), std::invalid_argument) << bad;
  }
}

TEST(FlagsTest, DurationAndSizeAccessors) {
  const auto f = make({"--idle-timeout=250ms", "--max-frame", "64K"});
  EXPECT_DOUBLE_EQ(f.get_duration("idle-timeout", "60s"), 0.25);
  EXPECT_DOUBLE_EQ(f.get_duration("drain-deadline", "2s"), 2.0);  // default
  EXPECT_EQ(f.get_size("max-frame", "1M"), 64u * 1024u);
  EXPECT_EQ(f.get_size("buffer", "1M"), 1u << 20);  // default
  // Both appear in usage() with their suffixed defaults, like any flag.
  const auto usage = f.usage();
  EXPECT_NE(usage.find("--idle-timeout  (default: 60s)"), std::string::npos);
  EXPECT_NE(usage.find("--max-frame  (default: 1M)"), std::string::npos);
}

TEST(FlagsTest, DurationAndSizeErrorsNameTheFlag) {
  const auto f = make({"--idle-timeout=5x"});
  try {
    (void)f.get_duration("idle-timeout", "60s");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--idle-timeout"),
              std::string::npos);
  }
  const auto g = make({"--max-frame=64Q"});
  EXPECT_THROW((void)g.get_size("max-frame", "1M"), std::invalid_argument);
}

TEST(FlagsTest, DurationAndSizeFlagsStillGetTypoHints) {
  const auto f = make({"--idle-timeuot=5s"});
  (void)f.get_duration("idle-timeout", "60s");
  try {
    f.finish();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("idle-timeout"), std::string::npos);
  }
}

TEST(FlagsTest, RejectsPositionalArgument) {
  EXPECT_THROW(make({"oops"}), std::invalid_argument);
}

TEST(FlagsTest, RejectsNonNumeric) {
  EXPECT_THROW(make({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--t=xy"}).get_double("t", 0.0), std::invalid_argument);
}

TEST(FlagsTest, UnqueriedFlagsReported) {
  const auto f = make({"--typo=1", "--n=5"});
  EXPECT_EQ(f.get_int("n", 0), 5);
  const auto leftover = f.unqueried();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover.front(), "typo");
}

TEST(FlagsTest, HelpRequested) {
  EXPECT_TRUE(make({"--help"}).help_requested());
  EXPECT_TRUE(make({"--help=true"}).help_requested());
  EXPECT_FALSE(make({}).help_requested());
  // Explicit false-ish values mean "no help", mirroring get_bool.
  EXPECT_FALSE(make({"--help=false"}).help_requested());
  EXPECT_FALSE(make({"--help=0"}).help_requested());
  EXPECT_FALSE(make({"--help=no"}).help_requested());
}

TEST(FlagsTest, UsageListsQueriedFlagsWithDefaults) {
  const auto f = make({});
  f.get_int("n", 50);
  f.get_double("t", 1.5);
  f.get_string("name", "br");
  f.get_bool("verbose");
  f.get_seed("seed", 42u);
  const auto usage = f.usage();
  EXPECT_NE(usage.find("--n  (default: 50)"), std::string::npos);
  EXPECT_NE(usage.find("--t  (default: 1.5)"), std::string::npos);
  EXPECT_NE(usage.find("--name  (default: br)"), std::string::npos);
  EXPECT_NE(usage.find("--verbose  (default: false)"), std::string::npos);
  EXPECT_NE(usage.find("--seed  (default: 42)"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(FlagsTest, FinishThrowsOnUnknownFlag) {
  const auto f = make({"--typo=1"});
  EXPECT_THROW(f.finish(), std::invalid_argument);
}

TEST(FlagsTest, FinishSuggestsClosestKnownFlag) {
  const auto f = make({"--sampel=3"});
  f.get_int("sample", 10);
  f.get_int("warmup", 20);
  try {
    f.finish();
    FAIL() << "finish() must reject the typo";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown flag: --sampel"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean --sample?"), std::string::npos) << what;
  }
}

TEST(FlagsTest, FinishOmitsSuggestionWhenNothingIsClose) {
  const auto f = make({"--zzqqxx=1"});
  f.get_int("n", 5);
  try {
    f.finish();
    FAIL() << "finish() must reject the unknown flag";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(ClosestNameTest, PicksMinimumEditDistanceWithinCutoff) {
  const std::vector<std::string> candidates{"sample", "warmup", "seed"};
  ASSERT_TRUE(closest_name("sampel", candidates).has_value());
  EXPECT_EQ(*closest_name("sampel", candidates), "sample");
  EXPECT_EQ(*closest_name("warmups", candidates), "warmup");
  EXPECT_EQ(*closest_name("sed", candidates), "seed");
  EXPECT_FALSE(closest_name("completely-different", candidates).has_value());
  EXPECT_FALSE(closest_name("x", {}).has_value());
}

TEST(FlagsTest, ConsumeAllReturnsEverythingAndSatisfiesFinish) {
  const auto f = make({"--a=1", "--b", "two"});
  const auto all = f.consume_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(all[1], (std::pair<std::string, std::string>{"b", "two"}));
  EXPECT_TRUE(f.unqueried().empty());
}

TEST(FlagsTest, FinishAcceptsQueriedAndExplicitNoHelp) {
  const auto f = make({"--n=5", "--help=false"});
  EXPECT_EQ(f.get_int("n", 0), 5);
  EXPECT_NO_THROW(f.finish());
}

TEST(FlagsDeathTest, FinishOnHelpPrintsUsageAndExitsZero) {
  const auto f = make({"--help"});
  f.get_int("n", 50);
  EXPECT_EXIT(f.finish("prog description"), ::testing::ExitedWithCode(0),
              "");
}

}  // namespace
}  // namespace egoist::util
