// Compiled with EGOIST_PROFILE_DISABLE: the scope macro must be a true
// compile-time no-op — no ProfileScope object, nothing recorded even with
// the profiler runtime-enabled.
#define EGOIST_PROFILE_DISABLE
#include "util/profiler.hpp"

#include <gtest/gtest.h>

namespace egoist::util {
namespace {

TEST(ProfilerDisabledTest, MacroCompilesToNothingAndRecordsNothing) {
  Profiler::instance().reset();
  Profiler::instance().set_enabled(true);
  {
    EGOIST_PROFILE_SCOPE("epoch");
    { EGOIST_PROFILE_SCOPE("evaluate"); }
  }
  EXPECT_TRUE(Profiler::instance().report().empty());
  Profiler::instance().set_enabled(false);
}

TEST(ProfilerDisabledTest, MacroIsAnExpressionStatement) {
  // The no-op expansion must still parse as a single statement so it can sit
  // in an unbraced if/else without changing control flow.
  if (false) EGOIST_PROFILE_SCOPE("never");
  SUCCEED();
}

}  // namespace
}  // namespace egoist::util
