#include "util/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace egoist {
namespace {

using util::LatencyHistogram;

// --- Bucket geometry ---

TEST(LatencyHistogramBuckets, BucketsTileTheRangeContiguously) {
  const std::size_t buckets = LatencyHistogram::bucket_count();
  ASSERT_GT(buckets, 0u);
  EXPECT_EQ(LatencyHistogram::bucket_lower(0), 0u);
  for (std::size_t i = 0; i + 1 < buckets; ++i) {
    const auto lower = LatencyHistogram::bucket_lower(i);
    const auto width = LatencyHistogram::bucket_width(i);
    // Every bucket's first and last value map back to it, and the next
    // bucket starts exactly where this one ends.
    EXPECT_EQ(LatencyHistogram::bucket_of(lower), i);
    EXPECT_EQ(LatencyHistogram::bucket_of(lower + width - 1), i);
    EXPECT_EQ(LatencyHistogram::bucket_lower(i + 1), lower + width);
  }
  // The last bucket ends at kMaxValue and absorbs everything above it.
  const std::size_t last = buckets - 1;
  EXPECT_EQ(LatencyHistogram::bucket_lower(last) +
                LatencyHistogram::bucket_width(last),
            LatencyHistogram::kMaxValue);
  EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::kMaxValue), last);
  EXPECT_EQ(
      LatencyHistogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
      last);
}

TEST(LatencyHistogramBuckets, SmallValuesGetExactBuckets) {
  // Blocks 0 and 1 (values below 2 * kSubCount) have width-1 buckets:
  // small latencies are recorded exactly.
  for (std::uint64_t v = 0; v < 2 * LatencyHistogram::kSubCount; ++v) {
    const auto i = LatencyHistogram::bucket_of(v);
    EXPECT_EQ(LatencyHistogram::bucket_lower(i), v);
    EXPECT_EQ(LatencyHistogram::bucket_width(i), 1u);
  }
}

TEST(LatencyHistogramBuckets, RelativeQuantizationErrorIsBounded) {
  // Above the exact range the bucket width never exceeds lower/kSubCount:
  // any percentile is within 1/kSubCount of the true sample value.
  util::Rng rng(7);
  for (int trial = 0; trial < 10000; ++trial) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(
        static_cast<std::int64_t>(2 * LatencyHistogram::kSubCount),
        static_cast<std::int64_t>(LatencyHistogram::kMaxValue - 1)));
    const auto i = LatencyHistogram::bucket_of(v);
    const auto lower = LatencyHistogram::bucket_lower(i);
    const auto width = LatencyHistogram::bucket_width(i);
    ASSERT_LE(lower, v);
    ASSERT_LT(v, lower + width);
    EXPECT_LE(width * LatencyHistogram::kSubCount, lower)
        << "value " << v << " bucket " << i;
  }
}

// --- Recording and percentiles ---

TEST(LatencyHistogram, CountSumMaxAndMean) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(10);
  h.record(20);
  h.record(90);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.max_recorded(), 90u);
  EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(LatencyHistogram, PercentilesOnUniformRampAreWithinOneBucket) {
  // 1..1000 once each: the true p-th percentile is ceil(10 * p); the
  // histogram answer must land within the containing bucket (upper edge
  // inclusive, since interpolation walks to the bucket's end).
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto check = [&](double p, std::uint64_t truth) {
    const auto i = LatencyHistogram::bucket_of(truth);
    const double lo = static_cast<double>(LatencyHistogram::bucket_lower(i));
    const double hi = lo + static_cast<double>(LatencyHistogram::bucket_width(i));
    const double got = h.percentile(p);
    EXPECT_GE(got, lo) << "p" << p;
    EXPECT_LE(got, hi) << "p" << p;
  };
  check(50.0, 500);
  check(99.0, 990);
  check(99.9, 999);
  check(100.0, 1000);
}

TEST(LatencyHistogram, PercentilesOnBimodalDistribution) {
  // 900 fast queries at ~100ns, 100 slow at ~10us: p50 sits in the fast
  // mode, p99 and p999 in the slow mode, each within 1/kSubCount relative.
  LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.record(100);
  for (int i = 0; i < 100; ++i) h.record(10000);
  const double rel = 1.0 / static_cast<double>(LatencyHistogram::kSubCount);
  EXPECT_NEAR(h.p50(), 100.0, 100.0 * rel + 1.0);
  EXPECT_NEAR(h.p99(), 10000.0, 10000.0 * rel + 1.0);
  EXPECT_NEAR(h.p999(), 10000.0, 10000.0 * rel + 1.0);
  EXPECT_EQ(h.max_recorded(), 10000u);
}

TEST(LatencyHistogram, SmallExactValuesGiveExactPercentileBounds) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);  // all exact buckets
  // rank(p50) = 25 -> bucket [25, 26); interpolation reports the upper edge.
  EXPECT_DOUBLE_EQ(h.p50(), 26.0);
  // p0 clamps to rank 1 -> first occupied bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 51.0);
}

TEST(LatencyHistogram, PercentileValidation) {
  LatencyHistogram h;
  EXPECT_THROW((void)h.p50(), std::invalid_argument);
  h.record(5);
  EXPECT_THROW((void)h.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(100.1), std::invalid_argument);
  EXPECT_NO_THROW((void)h.percentile(0.0));
  EXPECT_NO_THROW((void)h.percentile(100.0));
}

TEST(LatencyHistogram, OverflowValuesClampIntoLastBucket) {
  LatencyHistogram h;
  h.record(std::numeric_limits<std::uint64_t>::max());
  h.record(LatencyHistogram::kMaxValue);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
  EXPECT_LE(h.p50(), static_cast<double>(LatencyHistogram::kMaxValue));
}

// --- Merge ---

LatencyHistogram random_histogram(std::uint64_t seed, int samples) {
  util::Rng rng(seed);
  LatencyHistogram h;
  for (int i = 0; i < samples; ++i) {
    // Mix of magnitudes across several blocks.
    const auto magnitude = rng.uniform_int(0, 30);
    h.record(static_cast<std::uint64_t>(
        rng.uniform_int(0, (std::int64_t{1} << magnitude))));
  }
  return h;
}

void expect_identical(const LatencyHistogram& a, const LatencyHistogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.max_recorded(), b.max_recorded());
  EXPECT_EQ(a.buckets(), b.buckets());
}

TEST(LatencyHistogramMerge, MergeIsAssociativeAndCommutative) {
  const auto a = random_histogram(1, 4000);
  const auto b = random_histogram(2, 3000);
  const auto c = random_histogram(3, 2000);

  LatencyHistogram ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram a_bc = b;   // a + (b + c), built commuted
  a_bc.merge(c);
  a_bc.merge(a);
  expect_identical(ab_c, a_bc);
}

TEST(LatencyHistogramMerge, MergeEqualsConcatenatedStream) {
  // Per-thread histograms merged after join must equal one histogram fed
  // the concatenated sample stream — the property the bench relies on.
  LatencyHistogram merged;
  LatencyHistogram concatenated;
  for (std::uint64_t t = 0; t < 4; ++t) {
    const auto part = random_histogram(100 + t, 2500);
    merged.merge(part);
    util::Rng rng(100 + t);  // replay the same stream
    for (int i = 0; i < 2500; ++i) {
      const auto magnitude = rng.uniform_int(0, 30);
      concatenated.record(static_cast<std::uint64_t>(
          rng.uniform_int(0, (std::int64_t{1} << magnitude))));
    }
  }
  expect_identical(merged, concatenated);
  EXPECT_DOUBLE_EQ(merged.p99(), concatenated.p99());
}

TEST(LatencyHistogramMerge, MergeWithEmptyIsIdentity) {
  const auto a = random_histogram(9, 1000);
  LatencyHistogram merged = a;
  merged.merge(LatencyHistogram{});
  expect_identical(merged, a);
  LatencyHistogram other;
  other.merge(a);
  expect_identical(other, a);
}

}  // namespace
}  // namespace egoist
