#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace egoist::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(RngTest, SplitIsDecorrelatedFromParent) {
  Rng parent(7);
  Rng child = parent.split(1);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.uniform_int(0, 1'000'000) != child.uniform_int(0, 1'000'000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, UniformRealInHalfOpenRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ExponentialMeanApproximatesMean) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential_mean(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.2);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential_mean(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential_mean(-1.0), std::invalid_argument);
}

TEST(RngTest, ParetoRespectsScaleLowerBound) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, ParetoRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  std::vector<int> pool{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto sample = rng.sample_without_replacement(std::span<const int>(pool), 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPool) {
  Rng rng(19);
  std::vector<int> pool{1, 2, 3};
  const auto sample = rng.sample_without_replacement(std::span<const int>(pool), 3);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<int>{1, 2, 3}));
}

TEST(RngTest, SampleWithoutReplacementRejectsOversizedRequest) {
  Rng rng(1);
  std::vector<int> pool{1, 2};
  EXPECT_THROW(rng.sample_without_replacement(std::span<const int>(pool), 3),
               std::invalid_argument);
}

TEST(RngTest, PickRejectsEmptyPool) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(std::span<const int>(empty)), std::invalid_argument);
}

TEST(RngTest, SampleIsUnbiasedAcrossPositions) {
  // Every element should appear in a size-5 sample of a 10-element pool with
  // probability ~1/2; a strongly position-biased partial shuffle would fail.
  Rng rng(23);
  std::vector<int> pool{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> hits(10, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (int v : rng.sample_without_replacement(std::span<const int>(pool), 5)) {
      hits[static_cast<std::size_t>(v)]++;
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.5, 0.05);
  }
}

}  // namespace
}  // namespace egoist::util
