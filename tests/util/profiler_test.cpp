#include "util/profiler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace egoist::util {
namespace {

std::uint64_t g_fake_now_ns = 0;
std::uint64_t fake_clock() { return g_fake_now_ns; }

constexpr std::uint64_t kMs = 1'000'000;  // fake-clock unit: 1 ms in ns

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_now_ns = 0;
    Profiler::instance().reset();
    Profiler::instance().set_clock(&fake_clock);
    Profiler::instance().set_enabled(true);
  }

  void TearDown() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().set_clock(nullptr);
    Profiler::instance().reset();
  }
};

// The deterministic session the golden file captures: a 100 ms epoch with a
// 20 ms snapshot, a 40 ms evaluate containing two 10 ms path queries, and a
// 10 ms merge.
void record_epoch_session() {
  Profiler& p = Profiler::instance();
  g_fake_now_ns = 0;
  p.begin("epoch");
  g_fake_now_ns = 10 * kMs;
  p.begin("snapshot");
  g_fake_now_ns = 30 * kMs;
  p.end();
  g_fake_now_ns = 40 * kMs;
  p.begin("evaluate");
  g_fake_now_ns = 45 * kMs;
  p.begin("path_query");
  g_fake_now_ns = 55 * kMs;
  p.end();
  g_fake_now_ns = 60 * kMs;
  p.begin("path_query");
  g_fake_now_ns = 70 * kMs;
  p.end();
  g_fake_now_ns = 80 * kMs;
  p.end();
  g_fake_now_ns = 85 * kMs;
  p.begin("merge");
  g_fake_now_ns = 95 * kMs;
  p.end();
  g_fake_now_ns = 100 * kMs;
  p.end();
}

TEST_F(ProfilerTest, NestedScopesAggregateByPath) {
  record_epoch_session();
  const auto phases = Profiler::instance().report();
  ASSERT_EQ(phases.size(), 5u);

  EXPECT_EQ(phases[0].path, "epoch");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[0].total_ns, 100 * kMs);
  EXPECT_EQ(phases[0].self_ns, 30 * kMs);  // 100 - (20 + 40 + 10)

  EXPECT_EQ(phases[1].path, "epoch/evaluate");
  EXPECT_EQ(phases[1].total_ns, 40 * kMs);
  EXPECT_EQ(phases[1].self_ns, 20 * kMs);

  EXPECT_EQ(phases[2].path, "epoch/evaluate/path_query");
  EXPECT_EQ(phases[2].count, 2u);
  EXPECT_EQ(phases[2].total_ns, 20 * kMs);
  EXPECT_EQ(phases[2].self_ns, 20 * kMs);

  EXPECT_EQ(phases[3].path, "epoch/merge");
  EXPECT_EQ(phases[4].path, "epoch/snapshot");
}

TEST_F(ProfilerTest, RepeatedSessionsAccumulate) {
  record_epoch_session();
  record_epoch_session();
  const auto phases = Profiler::instance().report();
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(phases[0].count, 2u);
  EXPECT_EQ(phases[0].total_ns, 200 * kMs);
  EXPECT_EQ(phases[2].count, 4u);
}

TEST_F(ProfilerTest, MacroRecordsLexicalNesting) {
  {
    EGOIST_PROFILE_SCOPE("outer");
    { EGOIST_PROFILE_SCOPE("inner"); }
    { EGOIST_PROFILE_SCOPE("inner"); }
  }
  const auto phases = Profiler::instance().report();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].path, "outer");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[1].path, "outer/inner");
  EXPECT_EQ(phases[1].count, 2u);
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler::instance().set_enabled(false);
  { EGOIST_PROFILE_SCOPE("ghost"); }
  EXPECT_TRUE(Profiler::instance().report().empty());
}

TEST_F(ProfilerTest, EnablingMidScopeStaysBalanced) {
  Profiler::instance().set_enabled(false);
  {
    EGOIST_PROFILE_SCOPE("ghost");
    Profiler::instance().set_enabled(true);
  }  // the scope never began, so it must not call end()
  EXPECT_TRUE(Profiler::instance().report().empty());
  { EGOIST_PROFILE_SCOPE("real"); }
  ASSERT_EQ(Profiler::instance().report().size(), 1u);
}

TEST_F(ProfilerTest, ResetDropsEverything) {
  record_epoch_session();
  Profiler::instance().reset();
  EXPECT_TRUE(Profiler::instance().report().empty());
  record_epoch_session();
  EXPECT_EQ(Profiler::instance().report().size(), 5u);
}

TEST_F(ProfilerTest, ExitedThreadsAreRetainedInTheReport) {
  std::thread t([] {
    Profiler& p = Profiler::instance();
    g_fake_now_ns = 0;
    p.begin("worker_phase");
    g_fake_now_ns = 7 * kMs;
    p.end();
  });
  t.join();
  const auto phases = Profiler::instance().report();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].path, "worker_phase");
  EXPECT_EQ(phases[0].total_ns, 7 * kMs);
}

TEST_F(ProfilerTest, ThreadsMergeByPath) {
  {
    EGOIST_PROFILE_SCOPE("shared");
  }
  std::thread t([] {
    Profiler& p = Profiler::instance();
    p.begin("shared");
    p.end();
  });
  t.join();
  const auto phases = Profiler::instance().report();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].count, 2u);
}

TEST_F(ProfilerTest, ColumnSchemaIsStable) {
  const std::vector<std::string> expected = {"phase", "count", "total_ms",
                                             "mean_us", "self_ms"};
  EXPECT_EQ(profile_columns(), expected);
}

TEST_F(ProfilerTest, PhaseCellsFormatIsStable) {
  Profiler::Phase phase;
  phase.path = "epoch/evaluate";
  phase.count = 2;
  phase.total_ns = 20 * kMs;
  phase.self_ns = 5 * kMs;
  const std::vector<std::string> expected = {"epoch/evaluate", "2", "20.000",
                                             "10000.0", "5.000"};
  EXPECT_EQ(phase_cells(phase), expected);
}

TEST_F(ProfilerTest, ZeroCountPhaseFormatsWithoutDividing) {
  Profiler::Phase phase;
  phase.path = "open";
  const std::vector<std::string> expected = {"open", "0", "0.000", "0.0",
                                             "0.000"};
  EXPECT_EQ(phase_cells(phase), expected);
}

TEST_F(ProfilerTest, EmittedRowsMatchGoldenFile) {
  record_epoch_session();
  std::ostringstream got;
  const auto& columns = profile_columns();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    got << (i ? " | " : "") << columns[i];
  }
  got << "\n";
  for (const auto& phase : Profiler::instance().report()) {
    const auto cells = phase_cells(phase);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      got << (i ? " | " : "") << cells[i];
    }
    got << "\n";
  }

  const std::filesystem::path golden =
      std::filesystem::path(__FILE__).parent_path() / "golden" /
      "profile_rows.txt";
  std::ifstream in(golden);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << golden;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got.str(), want.str());
}

}  // namespace
}  // namespace egoist::util
