// Malformed-input battery for the wire codec (the ASan/UBSan CI job runs
// this suite): randomized truncations, bit flips, length patches and pure
// garbage over every message type. The codec's contract under attack is
// narrow and absolute — decoding returns a typed DecodeStatus, never
// throws, never over-reads the span it was handed, and never lets a
// hostile length force an allocation. The assertions here are therefore
// mostly "it returned SOME status and the process is still alive" — the
// sanitizers turn any over-read or overflow into a hard failure.
//
// Deterministic seeds: failures reproduce byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "wire/protocol.hpp"

namespace egoist::wire {
namespace {

/// One valid encoded frame of each request/response type, ids 1..N.
std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> frames;
  const auto add = [&](auto encode) {
    frames.emplace_back();
    encode(frames.back());
  };
  std::uint64_t id = 0;
  add([&](auto& o) { encode_ping_request(o, ++id); });
  add([&](auto& o) { encode_route_request(o, ++id, {3, 9}); });
  add([&](auto& o) { encode_path_request(o, ++id, {0, 7}); });
  add([&](auto& o) { encode_score_request(o, ++id, {5}); });
  add([&](auto& o) { encode_stats_request(o, ++id); });
  add([&](auto& o) { encode_ping_response(o, ++id, {100, 3, 4}); });
  add([&](auto& o) {
    RouteResponse resp;
    resp.reachable = 1;
    resp.next_hop = 2;
    resp.cost = 1.5;
    encode_route_response(o, ++id, resp);
  });
  add([&](auto& o) {
    PathResponse resp;
    resp.reachable = 1;
    resp.cost = 4.5;
    resp.hops = {0, 3, 5, 7};
    encode_path_response(o, ++id, resp);
  });
  add([&](auto& o) { encode_score_response(o, ++id, {2.5, 1, 2}); });
  add([&](auto& o) { encode_stats_response(o, ++id, StatsResponse{}); });
  add([&](auto& o) {
    StatsResponse resp;
    resp.per_loop.resize(3);
    resp.per_loop[1].frames_out = 42;
    encode_stats_response(o, ++id, resp);
  });
  add([&](auto& o) {
    encode_error_response(o, ++id, {2, "bad request payload"});
  });
  add([&](auto& o) {
    BatchRouteRequest req;
    req.pairs = {{0, 1}, {2, 3}, {4, 5}};
    encode_batch_route_request(o, ++id, req);
  });
  add([&](auto& o) {
    BatchRouteResponse resp;
    resp.epoch = 7;
    resp.publish_seq = 11;
    resp.entries = {{1, 2, 1.5}, {0, -1, 0.0}};
    encode_batch_route_response(o, ++id, resp);
  });
  return frames;
}

/// Runs the full streaming-receiver decode path over `bytes` exactly like
/// rpc code does: header first (bounded), then the payload decoder for
/// whichever direction the flags claim. Every status is acceptable; what
/// must not happen is a crash, a throw, or a sanitizer report.
void decode_anything(const std::vector<std::uint8_t>& bytes,
                     std::size_t max_frame = kDefaultMaxFrame) {
  const auto hd = decode_header(bytes, max_frame);
  if (hd.status != DecodeStatus::kOk) return;
  if (bytes.size() < kHeaderSize + hd.header.payload_len) return;  // kNeedMore
  const auto payload = std::span<const std::uint8_t>(bytes).subspan(
      kHeaderSize, hd.header.payload_len);
  if (hd.header.response) {
    (void)decode_response(hd.header, payload);
  } else {
    (void)decode_request(hd.header, payload);
  }
}

TEST(WireCodecFuzz, EveryTruncationOfEveryFrameIsRejectedCleanly) {
  for (const auto& frame : corpus()) {
    for (std::size_t len = 0; len <= frame.size(); ++len) {
      std::vector<std::uint8_t> cut(frame.begin(),
                                    frame.begin() + static_cast<long>(len));
      ASSERT_NO_THROW(decode_anything(cut));
      // A truncated payload handed AS IF complete must fail typed, not
      // over-read: lie about the length by shrinking payload_len to match.
      if (len >= kHeaderSize && len < frame.size()) {
        cut[16] = static_cast<std::uint8_t>(len - kHeaderSize);
        cut[17] = static_cast<std::uint8_t>((len - kHeaderSize) >> 8);
        cut[18] = 0;
        cut[19] = 0;
        ASSERT_NO_THROW(decode_anything(cut));
      }
    }
  }
}

TEST(WireCodecFuzz, SingleBitFlipsNeverCrashTheDecoder) {
  for (const auto& frame : corpus()) {
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = frame;
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        ASSERT_NO_THROW(decode_anything(mutated));
      }
    }
  }
}

TEST(WireCodecFuzz, RandomMutationsNeverCrashTheDecoder) {
  util::Rng rng(0xF0220000u);
  const auto frames = corpus();
  for (int round = 0; round < 20000; ++round) {
    auto mutated = frames[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(frames.size()) - 1))];
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < mutations; ++i) {
      switch (rng.uniform_int(0, 3)) {
        case 0:  // flip a random byte
          if (!mutated.empty()) {
            mutated[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(mutated.size()) - 1))] =
                static_cast<std::uint8_t>(rng.uniform_int(0, 255));
          }
          break;
        case 1:  // truncate
          if (!mutated.empty()) {
            mutated.resize(static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(mutated.size()) - 1)));
          }
          break;
        case 2:  // append garbage
          for (int j = rng.uniform_int(1, 32); j-- > 0;) {
            mutated.push_back(
                static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
          }
          break;
        default:  // patch the length field with a hostile value
          if (mutated.size() >= kHeaderSize) {
            const auto lie = static_cast<std::uint32_t>(
                rng.uniform_int(0, std::int64_t{1} << 32));
            mutated[16] = static_cast<std::uint8_t>(lie);
            mutated[17] = static_cast<std::uint8_t>(lie >> 8);
            mutated[18] = static_cast<std::uint8_t>(lie >> 16);
            mutated[19] = static_cast<std::uint8_t>(lie >> 24);
          }
          break;
      }
    }
    ASSERT_NO_THROW(decode_anything(mutated));
  }
}

TEST(WireCodecFuzz, PureGarbageStreamsAreRejected) {
  util::Rng rng(0xBAD5EEDu);
  for (int round = 0; round < 5000; ++round) {
    std::vector<std::uint8_t> garbage(static_cast<std::size_t>(
        rng.uniform_int(0, 256)));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto hd = decode_header(garbage);
    // Random bytes essentially never spell "EGOR" + version 1 + valid
    // type + valid flags; a passing header here would be suspicious.
    if (garbage.size() >= kHeaderSize) {
      EXPECT_NE(hd.status, DecodeStatus::kNeedMore);
    } else {
      EXPECT_EQ(hd.status, DecodeStatus::kNeedMore);
    }
    ASSERT_NO_THROW(decode_anything(garbage));
  }
}

TEST(WireCodecFuzz, HostileBatchCountsAreRejectedWithoutAllocating) {
  // BATCH_ROUTE carries an explicit element count; the decoder's exact-
  // tiling rule (remaining == count * stride, multiplied in u64) is what
  // keeps a hostile count from forcing a reserve. Patch the count field
  // of valid frames with every attack class and require a typed reject.
  BatchRouteRequest req;
  req.pairs = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  std::vector<std::uint8_t> request_frame;
  encode_batch_route_request(request_frame, 1, req);
  BatchRouteResponse resp;
  resp.entries = {{1, 2, 1.5}, {0, -1, 0.0}, {1, 0, 3.0}, {1, 9, 0.25}};
  std::vector<std::uint8_t> response_frame;
  encode_batch_route_response(response_frame, 2, resp);

  // Count sits right after the header in a request, after epoch (4) +
  // publish_seq (8) in a response.
  const auto patch_count = [](std::vector<std::uint8_t> frame,
                              std::size_t at, std::uint32_t count) {
    frame[at] = static_cast<std::uint8_t>(count);
    frame[at + 1] = static_cast<std::uint8_t>(count >> 8);
    frame[at + 2] = static_cast<std::uint8_t>(count >> 16);
    frame[at + 3] = static_cast<std::uint8_t>(count >> 24);
    return frame;
  };
  const auto decode_patched = [](const std::vector<std::uint8_t>& frame) {
    const auto hd = decode_header(frame);
    EXPECT_EQ(hd.status, DecodeStatus::kOk);
    const auto payload = std::span<const std::uint8_t>(frame).subspan(
        kHeaderSize, hd.header.payload_len);
    return hd.header.response ? decode_response(hd.header, payload).status
                              : decode_request(hd.header, payload).status;
  };

  const std::uint32_t hostile_counts[] = {
      0,           // zero-count batches are meaningless, rejected outright
      1, 3, 5,     // count disagrees with the actual payload tiling
      0x20000000,  // count * 8 == 2^32: a u32 multiply would wrap to 0
      0x13B13B14,  // count * 13 just past 2^32 for the response stride
      0xFFFFFFFF,  // worst case: full-range count on a tiny payload
  };
  for (const std::uint32_t count : hostile_counts) {
    EXPECT_EQ(decode_patched(patch_count(request_frame, kHeaderSize, count)),
              DecodeStatus::kBadPayload)
        << "request count " << count;
    EXPECT_EQ(
        decode_patched(patch_count(response_frame, kHeaderSize + 12, count)),
        DecodeStatus::kBadPayload)
        << "response count " << count;
  }

  // The count field can also claim more elements than the (valid-length)
  // payload holds after a truncation that fixes up payload_len — the
  // "count larger than payload" attack. Exact tiling rejects it too.
  for (std::size_t cut = kHeaderSize; cut < request_frame.size(); ++cut) {
    auto short_frame = std::vector<std::uint8_t>(request_frame.begin(),
                                                 request_frame.begin() +
                                                     static_cast<long>(cut));
    const auto payload_len = static_cast<std::uint32_t>(cut - kHeaderSize);
    short_frame[16] = static_cast<std::uint8_t>(payload_len);
    short_frame[17] = static_cast<std::uint8_t>(payload_len >> 8);
    short_frame[18] = 0;
    short_frame[19] = 0;
    EXPECT_NE(decode_patched(short_frame), DecodeStatus::kOk)
        << "cut " << cut;
  }
}

TEST(WireCodecFuzz, HostileLengthsNeverAllocate) {
  // Every frame type with payload_len patched to the receiver bound + 1:
  // rejected at the header, before any payload buffering or allocation.
  for (const auto& frame : corpus()) {
    auto mutated = frame;
    const std::uint32_t lie = (1u << 20) + 1;
    mutated[16] = static_cast<std::uint8_t>(lie);
    mutated[17] = static_cast<std::uint8_t>(lie >> 8);
    mutated[18] = static_cast<std::uint8_t>(lie >> 16);
    mutated[19] = static_cast<std::uint8_t>(lie >> 24);
    EXPECT_EQ(decode_header(mutated, 1u << 20).status,
              DecodeStatus::kOversized);
  }
}

}  // namespace
}  // namespace egoist::wire
