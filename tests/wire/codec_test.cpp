// Wire-protocol codec: encode/decode round trips for every message type,
// header validation (magic / version / type / flags / size bound), and the
// exact-consumption payload contract. The adversarial battery lives in
// codec_fuzz_test.cpp; these are the deterministic contracts.
#include "wire/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace egoist::wire {
namespace {

/// Splits one encoded frame into (validated header, payload span) or fails
/// the test.
struct SplitFrame {
  FrameHeader header;
  std::span<const std::uint8_t> payload;
};

SplitFrame split(const std::vector<std::uint8_t>& bytes,
                 std::size_t max_frame = kDefaultMaxFrame) {
  const auto hd = decode_header(bytes, max_frame);
  EXPECT_EQ(hd.status, DecodeStatus::kOk);
  EXPECT_EQ(bytes.size(), kHeaderSize + hd.header.payload_len)
      << "encoder produced trailing bytes";
  return {hd.header,
          std::span<const std::uint8_t>(bytes).subspan(kHeaderSize)};
}

TEST(WireCodec, PingRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_ping_request(bytes, 7);
  const auto f = split(bytes);
  EXPECT_EQ(f.header.type, MsgType::kPing);
  EXPECT_FALSE(f.header.response);
  EXPECT_EQ(f.header.request_id, 7u);
  EXPECT_EQ(f.header.payload_len, 0u);
  const auto decoded = decode_request(f.header, f.payload);
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  EXPECT_TRUE(std::holds_alternative<PingRequest>(decoded.request));

  PingResponse resp;
  resp.node_count = 10000;
  resp.epoch = 42;
  resp.publish_seq = 99;
  bytes.clear();
  encode_ping_response(bytes, 7, resp);
  const auto rf = split(bytes);
  EXPECT_TRUE(rf.header.response);
  const auto rd = decode_response(rf.header, rf.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  const auto& out = std::get<PingResponse>(rd.response);
  EXPECT_EQ(out.node_count, 10000u);
  EXPECT_EQ(out.epoch, 42);
  EXPECT_EQ(out.publish_seq, 99u);
}

TEST(WireCodec, RouteRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_route_request(bytes, 1, {123, -1});
  const auto f = split(bytes);
  const auto decoded = decode_request(f.header, f.payload);
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  const auto& req = std::get<RouteRequest>(decoded.request);
  EXPECT_EQ(req.src, 123);
  EXPECT_EQ(req.dst, -1);

  RouteResponse resp;
  resp.reachable = 1;
  resp.next_hop = 17;
  resp.cost = 3.25;
  resp.epoch = -2;
  resp.publish_seq = 1ull << 40;
  bytes.clear();
  encode_route_response(bytes, 1, resp);
  const auto rf = split(bytes);
  const auto rd = decode_response(rf.header, rf.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  const auto& out = std::get<RouteResponse>(rd.response);
  EXPECT_EQ(out.reachable, 1);
  EXPECT_EQ(out.next_hop, 17);
  EXPECT_DOUBLE_EQ(out.cost, 3.25);
  EXPECT_EQ(out.epoch, -2);
  EXPECT_EQ(out.publish_seq, 1ull << 40);
}

TEST(WireCodec, RouteResponseInfinityAndScoreNaNSurvive) {
  RouteResponse resp;
  resp.cost = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> bytes;
  encode_route_response(bytes, 2, resp);
  auto f = split(bytes);
  auto rd = decode_response(f.header, f.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  EXPECT_TRUE(std::isinf(std::get<RouteResponse>(rd.response).cost));

  ScoreResponse score;
  score.score = std::numeric_limits<double>::quiet_NaN();
  bytes.clear();
  encode_score_response(bytes, 3, score);
  f = split(bytes);
  rd = decode_response(f.header, f.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  EXPECT_TRUE(std::isnan(std::get<ScoreResponse>(rd.response).score));
}

TEST(WireCodec, PathRoundTripWithAndWithoutHops) {
  PathResponse resp;
  resp.reachable = 1;
  resp.cost = 12.5;
  resp.epoch = 3;
  resp.publish_seq = 8;
  resp.hops = {0, 5, 2, 9};
  std::vector<std::uint8_t> bytes;
  encode_path_response(bytes, 4, resp);
  auto f = split(bytes);
  auto rd = decode_response(f.header, f.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  EXPECT_EQ(std::get<PathResponse>(rd.response).hops,
            (std::vector<std::int32_t>{0, 5, 2, 9}));

  resp.hops.clear();
  resp.reachable = 0;
  bytes.clear();
  encode_path_response(bytes, 5, resp);
  f = split(bytes);
  rd = decode_response(f.header, f.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  EXPECT_TRUE(std::get<PathResponse>(rd.response).hops.empty());
}

TEST(WireCodec, StatsRoundTripCarriesEveryCounter) {
  StatsResponse resp;
  resp.node_count = 2000;
  resp.published_epoch = 64;
  resp.publish_seq = 66;
  resp.queries_route = 1;
  resp.queries_path = 2;
  resp.queries_score = 3;
  resp.stale_served = 4;
  resp.rows_built = 5;
  resp.rows_discarded = 6;
  resp.uncached_queries = 7;
  resp.seal_violations = 8;
  resp.retired_pending = 9;
  resp.connections_accepted = 10;
  resp.connections_active = 11;
  resp.frames_in = 12;
  resp.frames_out = 13;
  resp.decode_errors = 14;
  resp.error_responses = 15;
  resp.idle_closed = 16;
  resp.bytes_in = 17;
  resp.bytes_out = 18;
  resp.batches = 19;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(bytes, 6, resp);
  const auto f = split(bytes);
  const auto rd = decode_response(f.header, f.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  const auto& out = std::get<StatsResponse>(rd.response);
  EXPECT_EQ(out.node_count, 2000u);
  EXPECT_EQ(out.published_epoch, 64);
  EXPECT_EQ(out.publish_seq, 66u);
  EXPECT_EQ(out.queries_route, 1u);
  EXPECT_EQ(out.queries_path, 2u);
  EXPECT_EQ(out.queries_score, 3u);
  EXPECT_EQ(out.stale_served, 4u);
  EXPECT_EQ(out.rows_built, 5u);
  EXPECT_EQ(out.rows_discarded, 6u);
  EXPECT_EQ(out.uncached_queries, 7u);
  EXPECT_EQ(out.seal_violations, 8u);
  EXPECT_EQ(out.retired_pending, 9u);
  EXPECT_EQ(out.connections_accepted, 10u);
  EXPECT_EQ(out.connections_active, 11u);
  EXPECT_EQ(out.frames_in, 12u);
  EXPECT_EQ(out.frames_out, 13u);
  EXPECT_EQ(out.decode_errors, 14u);
  EXPECT_EQ(out.error_responses, 15u);
  EXPECT_EQ(out.idle_closed, 16u);
  EXPECT_EQ(out.bytes_in, 17u);
  EXPECT_EQ(out.bytes_out, 18u);
  EXPECT_EQ(out.batches, 19u);
}

TEST(WireCodec, BatchRouteRoundTrip) {
  BatchRouteRequest req;
  req.pairs = {{0, 9999}, {42, -0}, {7, 7}};
  std::vector<std::uint8_t> bytes;
  encode_batch_route_request(bytes, 11, req);
  const auto f = split(bytes);
  EXPECT_EQ(f.header.type, MsgType::kBatchRoute);
  EXPECT_FALSE(f.header.response);
  EXPECT_EQ(f.header.payload_len, 4u + 3u * 8u);
  const auto decoded = decode_request(f.header, f.payload);
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  const auto& out_req = std::get<BatchRouteRequest>(decoded.request);
  ASSERT_EQ(out_req.pairs.size(), 3u);
  EXPECT_EQ(out_req.pairs[0].src, 0);
  EXPECT_EQ(out_req.pairs[0].dst, 9999);
  EXPECT_EQ(out_req.pairs[1].src, 42);
  EXPECT_EQ(out_req.pairs[2].dst, 7);

  BatchRouteResponse resp;
  resp.epoch = -3;
  resp.publish_seq = 1ull << 33;
  resp.entries = {{1, 17, 3.25}, {0, -1, 0.0}, {1, 0, 0.5}};
  bytes.clear();
  encode_batch_route_response(bytes, 11, resp);
  const auto rf = split(bytes);
  EXPECT_TRUE(rf.header.response);
  EXPECT_EQ(rf.header.payload_len, 4u + 8u + 4u + 3u * 13u);
  const auto rd = decode_response(rf.header, rf.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  const auto& out = std::get<BatchRouteResponse>(rd.response);
  EXPECT_EQ(out.epoch, -3);
  EXPECT_EQ(out.publish_seq, 1ull << 33);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0].reachable, 1);
  EXPECT_EQ(out.entries[0].next_hop, 17);
  EXPECT_DOUBLE_EQ(out.entries[0].cost, 3.25);
  EXPECT_EQ(out.entries[1].reachable, 0);
  EXPECT_EQ(out.entries[1].next_hop, -1);
}

TEST(WireCodec, EmptyBatchRouteRejectedBothDirections) {
  std::vector<std::uint8_t> bytes;
  encode_batch_route_request(bytes, 1, BatchRouteRequest{});
  const auto f = split(bytes);
  EXPECT_EQ(decode_request(f.header, f.payload).status,
            DecodeStatus::kBadPayload);
  bytes.clear();
  encode_batch_route_response(bytes, 1, BatchRouteResponse{});
  const auto rf = split(bytes);
  EXPECT_EQ(decode_response(rf.header, rf.payload).status,
            DecodeStatus::kBadPayload);
}

TEST(WireCodec, StatsPerLoopBreakdownRoundTrips) {
  StatsResponse resp;
  resp.frames_out = 100;
  resp.per_loop.resize(3);
  resp.per_loop[0].frames_out = 60;
  resp.per_loop[1].frames_out = 40;
  resp.per_loop[1].connections_accepted = 5;
  resp.per_loop[2].batches = 7;
  resp.per_loop[2].bytes_in = 123456;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(bytes, 8, resp);
  const auto f = split(bytes);
  const auto rd = decode_response(f.header, f.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  const auto& out = std::get<StatsResponse>(rd.response);
  ASSERT_EQ(out.per_loop.size(), 3u);
  EXPECT_EQ(out.per_loop[0].frames_out, 60u);
  EXPECT_EQ(out.per_loop[1].frames_out, 40u);
  EXPECT_EQ(out.per_loop[1].connections_accepted, 5u);
  EXPECT_EQ(out.per_loop[2].batches, 7u);
  EXPECT_EQ(out.per_loop[2].bytes_in, 123456u);
}

TEST(WireCodec, V1StatsFramesStillParseWithEmptyPerLoop) {
  // A v1 peer's STATS frame is the frozen 22-field prefix with no per-loop
  // appendix: build one by stripping the (empty) appendix off a v2 frame
  // and stamping version 1. The 22 shared fields must decode unchanged.
  StatsResponse resp;
  resp.node_count = 777;
  resp.batches = 19;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(bytes, 4, resp);
  bytes.resize(bytes.size() - 4);  // drop the u32 loop_count == 0
  bytes[4] = 1;                    // version byte
  const auto new_len = static_cast<std::uint32_t>(bytes.size() - kHeaderSize);
  bytes[16] = static_cast<std::uint8_t>(new_len);
  bytes[17] = static_cast<std::uint8_t>(new_len >> 8);
  bytes[18] = static_cast<std::uint8_t>(new_len >> 16);
  bytes[19] = static_cast<std::uint8_t>(new_len >> 24);
  const auto hd = decode_header(bytes);
  ASSERT_EQ(hd.status, DecodeStatus::kOk);
  EXPECT_EQ(hd.header.version, 1);
  const auto rd = decode_response(
      hd.header, std::span<const std::uint8_t>(bytes).subspan(kHeaderSize));
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  const auto& out = std::get<StatsResponse>(rd.response);
  EXPECT_EQ(out.node_count, 777u);
  EXPECT_EQ(out.batches, 19u);
  EXPECT_TRUE(out.per_loop.empty());

  // The same bytes with version 2 claim a per-loop appendix that is not
  // there — rejected, not misparsed.
  bytes[4] = kVersion;
  const auto hd2 = decode_header(bytes);
  ASSERT_EQ(hd2.status, DecodeStatus::kOk);
  EXPECT_EQ(decode_response(hd2.header,
                            std::span<const std::uint8_t>(bytes).subspan(
                                kHeaderSize))
                .status,
            DecodeStatus::kBadPayload);
}

TEST(WireCodec, ErrorRoundTrip) {
  ErrorResponse resp;
  resp.code = static_cast<std::uint16_t>(ErrorCode::kOutOfRange);
  resp.message = "node id out of range";
  std::vector<std::uint8_t> bytes;
  encode_error_response(bytes, 9, resp);
  const auto f = split(bytes);
  EXPECT_EQ(f.header.type, MsgType::kError);
  EXPECT_TRUE(f.header.response);
  const auto rd = decode_response(f.header, f.payload);
  ASSERT_EQ(rd.status, DecodeStatus::kOk);
  const auto& out = std::get<ErrorResponse>(rd.response);
  EXPECT_EQ(out.code, static_cast<std::uint16_t>(ErrorCode::kOutOfRange));
  EXPECT_EQ(out.message, "node id out of range");
}

// --- Header validation ----------------------------------------------------

std::vector<std::uint8_t> valid_frame() {
  std::vector<std::uint8_t> bytes;
  encode_route_request(bytes, 77, {1, 2});
  return bytes;
}

TEST(WireHeader, NeedMoreOnShortHeader) {
  const auto bytes = valid_frame();
  for (std::size_t len = 0; len < kHeaderSize; ++len) {
    const auto hd = decode_header(
        std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_EQ(hd.status, DecodeStatus::kNeedMore) << "len=" << len;
  }
}

TEST(WireHeader, BadMagicRejected) {
  auto bytes = valid_frame();
  bytes[0] ^= 0xFF;
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kBadMagic);
}

TEST(WireHeader, BadVersionRejected) {
  auto bytes = valid_frame();
  bytes[4] = kVersion + 1;
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kBadVersion);
  bytes[4] = 0;  // below kMinVersion
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kBadVersion);
}

TEST(WireHeader, WholeVersionRangeAccepted) {
  // v2 receivers speak to v1 peers: every version in [kMinVersion,
  // kVersion] passes the header check and is reported back verbatim.
  for (std::uint8_t version = kMinVersion; version <= kVersion; ++version) {
    auto bytes = valid_frame();
    bytes[4] = version;
    const auto hd = decode_header(bytes);
    EXPECT_EQ(hd.status, DecodeStatus::kOk) << "version " << int{version};
    EXPECT_EQ(hd.header.version, version);
  }
}

TEST(WireHeader, BatchRouteIsV2Only) {
  // A v1 peer never learned BATCH_ROUTE; a v1-stamped batch frame gets
  // the same kBadType that peer would produce itself.
  std::vector<std::uint8_t> bytes;
  BatchRouteRequest req;
  req.pairs = {{1, 2}};
  encode_batch_route_request(bytes, 3, req);
  ASSERT_EQ(decode_header(bytes).status, DecodeStatus::kOk);
  bytes[4] = 1;
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kBadType);
}

TEST(WireHeader, UnknownTypeRejected) {
  auto bytes = valid_frame();
  bytes[5] = 0;
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kBadType);
  bytes[5] = 200;
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kBadType);
}

TEST(WireHeader, ReservedFlagBitsRejected) {
  auto bytes = valid_frame();
  bytes[6] |= 0x02;  // any bit beyond bit 0
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kBadFlags);
}

TEST(WireHeader, OversizedPayloadRejectedBeforeBuffering) {
  auto bytes = valid_frame();
  // Patch payload_len (offset 16, u32 LE) to 32 MiB - 1 — beyond both the
  // default bound and the 16 MiB hard limit.
  bytes[16] = 0xFF;
  bytes[17] = 0xFF;
  bytes[18] = 0xFF;
  bytes[19] = 0x01;
  EXPECT_EQ(decode_header(bytes).status, DecodeStatus::kOversized);
  // A tighter receiver bound rejects smaller frames too.
  const auto small = valid_frame();
  EXPECT_EQ(decode_header(small, /*max_frame=*/4).status,
            DecodeStatus::kOversized);
  // And nothing may raise the bound above kMaxFrameLimit.
  EXPECT_EQ(decode_header(bytes, /*max_frame=*/1ull << 40).status,
            DecodeStatus::kOversized);
}

// --- Payload contract -----------------------------------------------------

TEST(WirePayload, TruncatedPayloadRejected) {
  const auto bytes = valid_frame();
  const auto f = split(bytes);
  for (std::size_t len = 0; len < f.payload.size(); ++len) {
    const auto rd = decode_request(f.header, f.payload.subspan(0, len));
    EXPECT_EQ(rd.status, DecodeStatus::kBadPayload) << "len=" << len;
  }
}

TEST(WirePayload, TrailingBytesRejected) {
  auto bytes = valid_frame();
  bytes.push_back(0);
  const auto hd = decode_header(bytes);
  ASSERT_EQ(hd.status, DecodeStatus::kOk);
  // Hand the decoder one byte more than payload_len claims.
  const auto rd = decode_request(
      hd.header, std::span<const std::uint8_t>(bytes).subspan(kHeaderSize));
  EXPECT_EQ(rd.status, DecodeStatus::kBadPayload);
}

TEST(WirePayload, RequestDecoderRejectsResponses) {
  std::vector<std::uint8_t> bytes;
  encode_route_response(bytes, 1, RouteResponse{});
  const auto f = split(bytes);
  EXPECT_EQ(decode_request(f.header, f.payload).status,
            DecodeStatus::kBadType);
}

TEST(WirePayload, ErrorIsResponseOnly) {
  std::vector<std::uint8_t> bytes;
  encode_error_response(bytes, 1, {1, "x"});
  auto hd = decode_header(bytes);
  ASSERT_EQ(hd.status, DecodeStatus::kOk);
  hd.header.response = false;  // forge a request-direction ERROR
  EXPECT_EQ(decode_request(hd.header,
                           std::span<const std::uint8_t>(bytes).subspan(
                               kHeaderSize))
                .status,
            DecodeStatus::kBadType);
}

TEST(WirePayload, HostileHopCountCannotForceAllocation) {
  // A PATH response whose hop_count claims 2^30 entries but whose payload
  // carries none: the decoder must reject before reserving anything.
  PathResponse resp;
  resp.reachable = 1;
  std::vector<std::uint8_t> bytes;
  encode_path_response(bytes, 1, resp);
  // hop_count is the last u32 of the fixed part; empty hops follow. Patch
  // it to a huge value without appending hop data.
  const std::size_t hop_count_at = bytes.size() - 4;
  bytes[hop_count_at] = 0x00;
  bytes[hop_count_at + 1] = 0x00;
  bytes[hop_count_at + 2] = 0x00;
  bytes[hop_count_at + 3] = 0x40;  // 2^30
  const auto hd = decode_header(bytes);
  ASSERT_EQ(hd.status, DecodeStatus::kOk);
  const auto rd = decode_response(
      hd.header, std::span<const std::uint8_t>(bytes).subspan(kHeaderSize));
  EXPECT_EQ(rd.status, DecodeStatus::kBadPayload);
}

TEST(WireCodec, EncodersAppendWithoutClobbering) {
  // Encoders append — back-to-back frames in one buffer is the pipelined
  // server's write path.
  std::vector<std::uint8_t> bytes;
  encode_route_request(bytes, 1, {0, 1});
  const auto first_len = bytes.size();
  encode_ping_request(bytes, 2);
  const auto hd1 = decode_header(bytes);
  ASSERT_EQ(hd1.status, DecodeStatus::kOk);
  EXPECT_EQ(kHeaderSize + hd1.header.payload_len, first_len);
  const auto hd2 = decode_header(
      std::span<const std::uint8_t>(bytes).subspan(first_len));
  ASSERT_EQ(hd2.status, DecodeStatus::kOk);
  EXPECT_EQ(hd2.header.request_id, 2u);
}

}  // namespace
}  // namespace egoist::wire
