// Concurrency battery for host::RouteService (the TSan CI job runs this
// suite): reader threads hammer queries while epochs rewire and churn the
// overlay on the host thread. The assertions pin the RCU contract:
//
//  - every answered query is internally consistent with SOME published
//    snapshot (path edges exist in that snapshot's announced graph and sum
//    to the reported cost — a torn read could not produce that),
//  - retired snapshots drain to zero once readers release them (no leak,
//    no use-after-free; ASan/TSan jobs double-check the latter),
//  - service counters reconcile exactly with reader-side tallies,
//  - epoch-end publication ordering: subscribers registered after the
//    service observe the fresh epoch's publication from their callback,
//  - serve-while-epoching determinism: trajectories with an active
//    RouteService under reader load are bit-identical to trajectories with
//    no readers, across workers {0,2,4} x incremental on/off.
#include "host/route_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "../overlay/determinism_harness.hpp"
#include "churn/churn.hpp"
#include "host/overlay_host.hpp"
#include "util/rng.hpp"

namespace egoist {
namespace {

using testing::DeterminismCase;
using testing::expect_same_trajectory;
using testing::record_trajectory;

host::OverlaySpec br_spec(std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.metric = overlay::Metric::kDelayPing;
  config.k = 3;
  config.seed = seed;
  return host::OverlaySpec(config);
}

/// Validates one path answer against the snapshot that produced it:
/// consecutive edges must exist in that snapshot's announced graph and
/// their weights must sum to the reported cost. Any torn read (mixing two
/// publications) breaks one of these with overwhelming probability.
bool internally_consistent(const host::ServedSnapshot& pinned,
                           const host::PathAnswer& answer,
                           graph::NodeId src, graph::NodeId dst) {
  const auto& announced = pinned.snapshot().announced_graph();
  if (!answer.reachable) {
    return answer.nodes.empty() && answer.cost == graph::kUnreachable;
  }
  if (answer.nodes.front() != src || answer.nodes.back() != dst) return false;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < answer.nodes.size(); ++i) {
    if (!announced.has_edge(answer.nodes[i], answer.nodes[i + 1])) return false;
    total += announced.edge_weight(answer.nodes[i], answer.nodes[i + 1]);
  }
  return std::abs(total - answer.cost) <= 1e-9 * (1.0 + answer.cost);
}

TEST(RouteServiceConcurrency, HammeredQueriesStayConsistentUnderChurn) {
  constexpr std::size_t kNodes = 32;
  constexpr int kReaders = 4;
  constexpr int kEpochs = 10;

  host::OverlayHost host(kNodes, 77);
  churn::ChurnConfig churn_config;
  churn_config.timescale = 0.05;  // accelerate: real joins/leaves in 10 epochs
  churn_config.initial_on_fraction = 0.9;
  churn::ChurnTrace trace(kNodes, kEpochs * 60.0, 99, churn_config);
  const auto handle =
      host.deploy(br_spec(7).epoch_period(60.0).staggered(5).churn(trace));
  host::RouteService service(host, handle);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inconsistent{0};
  std::vector<std::uint64_t> route_tallies(kReaders, 0);
  std::vector<std::uint64_t> path_tallies(kReaders, 0);
  std::vector<std::uint64_t> score_tallies(kReaders, 0);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(r));
      while (!stop.load(std::memory_order_relaxed)) {
        const auto src = static_cast<graph::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(kNodes) - 1));
        const auto dst = static_cast<graph::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(kNodes) - 1));
        const auto pinned = service.acquire();
        const auto route = pinned.route(src, dst);
        ++route_tallies[static_cast<std::size_t>(r)];
        const auto path = pinned.path(src, dst);
        ++path_tallies[static_cast<std::size_t>(r)];
        if (!internally_consistent(pinned, path, src, dst)) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
        // route and path answer from the same pinned view: they must agree.
        if (route.reachable != path.reachable ||
            (route.reachable && route.cost != path.cost) ||
            (route.reachable && path.nodes.size() > 1 &&
             route.next_hop != path.nodes[1])) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
        if (rng.chance(0.05)) {
          const double s = pinned.score(src);
          ++score_tallies[static_cast<std::size_t>(r)];
          if (pinned.snapshot().is_online(src)) {
            if (!(s >= 0.0)) inconsistent.fetch_add(1, std::memory_order_relaxed);
          } else if (!std::isnan(s)) {
            inconsistent.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  host.run_epochs(handle, kEpochs);
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(inconsistent.load(), 0u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.swaps, static_cast<std::uint64_t>(kEpochs));
  EXPECT_EQ(stats.published_epoch, kEpochs);
  EXPECT_EQ(stats.seal_violations, 0u);

  // Counters reconcile exactly with the reader-side tallies.
  std::uint64_t route_total = 0, path_total = 0, score_total = 0;
  for (int r = 0; r < kReaders; ++r) {
    route_total += route_tallies[static_cast<std::size_t>(r)];
    path_total += path_tallies[static_cast<std::size_t>(r)];
    score_total += score_tallies[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(stats.queries_route, route_total);
  EXPECT_EQ(stats.queries_path, path_total);
  EXPECT_EQ(stats.queries_score, score_total);
  EXPECT_GT(stats.queries_served(), 0u);

  // Grace period: with every reader joined, one reclaim drains the
  // retired list to zero.
  service.reclaim();
  EXPECT_EQ(service.retired_pending(), 0u);
}

TEST(RouteServiceConcurrency, RetiredViewsDrainOnlyAfterReadersRelease) {
  host::OverlayHost host(12, 3);
  const auto handle = host.deploy(br_spec(11));
  host::RouteService service(host, handle);

  // Pin the initial publication, then swap it out twice.
  auto pinned = std::make_unique<host::ServedSnapshot>(service.acquire());
  host.run_epochs(handle, 2);
  EXPECT_EQ(service.stats().swaps, 2u);

  // The pinned view cannot be reclaimed while the reader holds it. (The
  // intermediate epoch-1 view has already drained: publish() sweeps.)
  service.reclaim();
  EXPECT_EQ(service.retired_pending(), 1u);
  EXPECT_EQ(pinned->publish_seq(), 1u);

  // Queries through the superseded view still answer, and count as stale.
  const auto before = service.stats().stale_served;
  (void)pinned->route(0, 1);
  EXPECT_GT(service.stats().stale_served, before);

  // Release + reclaim: refcount drains to the retired list, view freed.
  pinned.reset();
  EXPECT_EQ(service.reclaim(), 1u);
  EXPECT_EQ(service.retired_pending(), 0u);
}

TEST(RouteServiceConcurrency, DrainQuiescesWhenNoReaderPinsAView) {
  host::OverlayHost host(12, 3);
  const auto handle = host.deploy(br_spec(11));
  host::RouteService service(host, handle);
  host.run_epochs(handle, 3);
  (void)service.route(0, 1);  // transient pin, released before drain
  EXPECT_TRUE(service.drain(5.0));
  EXPECT_EQ(service.retired_pending(), 0u);
}

TEST(RouteServiceConcurrency, DrainWaitsForPinnedReadersAndTimesOut) {
  host::OverlayHost host(12, 3);
  const auto handle = host.deploy(br_spec(11));
  host::RouteService service(host, handle);

  // A reader pins the current publication, then it is superseded: drain
  // cannot finish while the pin lives.
  auto pinned = std::make_unique<host::ServedSnapshot>(service.acquire());
  host.run_epochs(handle, 1);
  EXPECT_FALSE(service.drain(0.05));
  EXPECT_EQ(service.retired_pending(), 1u);

  // A releasing reader unblocks a waiting drain.
  std::thread releaser([&pinned] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pinned.reset();
  });
  EXPECT_TRUE(service.drain(10.0));
  releaser.join();
  EXPECT_EQ(service.retired_pending(), 0u);

  // Quiesced is a stable state: an immediate re-drain is instant.
  EXPECT_TRUE(service.drain(0.0));
}

TEST(RouteServiceConcurrency, DrainAlsoWaitsOutPinsOfTheCurrentView) {
  host::OverlayHost host(12, 3);
  const auto handle = host.deploy(br_spec(11));
  host::RouteService service(host, handle);
  // No swap ever happened — the pin is on the CURRENT view, and drain
  // still must wait for it (a dangling reader is a leak either way).
  auto pinned = std::make_unique<host::ServedSnapshot>(service.acquire());
  EXPECT_FALSE(service.drain(0.05));
  pinned.reset();
  EXPECT_TRUE(service.drain(5.0));
}

TEST(RouteServiceConcurrency, FreshQueriesAreNotStale) {
  host::OverlayHost host(12, 3);
  const auto handle = host.deploy(br_spec(11));
  host::RouteService service(host, handle);
  host.run_epochs(handle, 3);
  (void)service.route(0, 1);
  (void)service.path(1, 2);
  EXPECT_EQ(service.stats().stale_served, 0u);
}

TEST(RouteServiceConcurrency, EpochEndSubscribersAfterServiceSeeFreshPublication) {
  host::OverlayHost host(12, 5);
  const auto handle = host.deploy(br_spec(21));
  host::RouteService service(host, handle);

  // Dispatch fires callbacks in subscription order, and the service
  // subscribed first: by the time any later epoch-end observer runs, the
  // service has already swapped in the epoch's snapshot.
  int observed = 0;
  host.on_epoch_end(handle, [&](const host::EpochEvent& event) {
    const auto pinned = service.acquire();
    EXPECT_EQ(pinned.epoch(), event.epoch);
    EXPECT_EQ(pinned.snapshot().total_rewirings(), event.total_rewirings);
    ++observed;
  });
  host.run_epochs(handle, 4);
  EXPECT_EQ(observed, 4);
}

TEST(RouteServiceConcurrency, AcquireIsValidBeforeAnyEpoch) {
  host::OverlayHost host(12, 9);
  const auto handle = host.deploy(br_spec(13));
  host::RouteService service(host, handle);
  const auto pinned = service.acquire();
  ASSERT_TRUE(pinned.valid());
  EXPECT_EQ(pinned.epoch(), 0);
  EXPECT_EQ(pinned.publish_seq(), 1u);
  EXPECT_EQ(service.stats().swaps, 0u);
  // The bootstrap wiring is already queryable.
  const auto answer = pinned.route(0, 1);
  EXPECT_EQ(answer.epoch, 0);
}

TEST(RouteServiceConcurrency, RowCacheCapFallsBackToTransientRows) {
  host::OverlayHost host(16, 9);
  const auto handle = host.deploy(br_spec(13));
  host::RouteService::Options options;
  options.max_cached_sources = 2;
  host::RouteService service(host, handle, options);
  host.run_epochs(handle, 1);
  for (graph::NodeId src = 0; src < 16; ++src) {
    (void)service.route(src, (src + 1) % 16);
  }
  const auto stats = service.stats();
  EXPECT_LE(stats.rows_built, 3u);  // soft cap: single thread stays exact +1
  EXPECT_GT(stats.uncached_queries, 0u);
  // Transient answers equal cached answers.
  const auto a = service.route(0, 5);
  const auto b = service.route(3, 5);
  EXPECT_EQ(a.reachable, true);
  EXPECT_EQ(b.reachable, true);
}

// --- Serve-while-epoching determinism (the lockstep satellite) ---

class ServeDeterminism : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ServeDeterminism, TrajectoriesIdenticalWithAndWithoutReaders) {
  const auto [workers, incremental] = GetParam();
  DeterminismCase c;
  c.nodes = 14;
  c.host_seed = 11;
  c.epochs = 5;
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.metric = overlay::Metric::kDelayPing;
  config.k = 3;
  config.seed = 29;
  config.epoch_workers = workers;
  config.incremental = incremental;
  c.spec = host::OverlaySpec(config);

  const auto baseline = record_trajectory(c);
  const auto served = record_trajectory(c, /*serve_readers=*/2);
  expect_same_trajectory(baseline, served,
                         "workers=" + std::to_string(workers) +
                             " incremental=" + std::to_string(incremental));
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByIncremental, ServeDeterminism,
    ::testing::Combine(::testing::Values(0, 2, 4),
                       ::testing::Values(false, true)));

}  // namespace
}  // namespace egoist
