// Property test for RouteService query answers: for random small overlays
// (policies x churn-induced offline nodes), every path() answer must match
// a freshly computed reference shortest path on the snapshot's announced
// graph — cost-equality (ties may pick different node sequences), plus
// validity of the returned sequence, unreachable pairs, offline-node and
// out-of-range edge cases.
#include "host/route_service.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "churn/churn.hpp"
#include "graph/shortest_path.hpp"
#include "host/overlay_host.hpp"

namespace egoist {
namespace {

struct Scenario {
  std::size_t n;
  overlay::Policy policy;
  std::uint64_t seed;
  bool churn;
};

class RoutePropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(RoutePropertyTest, PathAnswersMatchReferenceOnAnnouncedGraph) {
  const auto scenario = GetParam();
  host::OverlayHost host(scenario.n, scenario.seed);
  overlay::OverlayConfig config;
  config.policy = scenario.policy;
  config.metric = overlay::Metric::kDelayPing;
  config.k = 3;
  config.seed = scenario.seed ^ 0xF00Dull;
  host::OverlaySpec spec(config);
  if (scenario.churn) {
    churn::ChurnConfig churn_config;
    churn_config.timescale = 0.05;
    churn_config.initial_on_fraction = 0.8;
    spec.churn(churn::ChurnTrace(scenario.n, 6 * 60.0,
                                 scenario.seed ^ 0xC0FFEEull, churn_config));
  }
  const auto handle = host.deploy(spec);
  host::RouteService service(host, handle);
  host.run_epochs(handle, 6);

  const auto pinned = service.acquire();
  const auto& snap = pinned.snapshot();
  const auto& announced = snap.announced_graph();
  const auto n = static_cast<graph::NodeId>(scenario.n);

  for (graph::NodeId src = 0; src < n; ++src) {
    graph::ShortestPathTree reference;
    const bool src_online = snap.is_online(src);
    if (src_online) reference = graph::dijkstra(announced, src);
    for (graph::NodeId dst = 0; dst < n; ++dst) {
      const auto answer = pinned.path(src, dst);
      const auto route = pinned.route(src, dst);
      if (!src_online || !snap.is_online(dst)) {
        EXPECT_FALSE(answer.reachable) << src << "->" << dst;
        EXPECT_FALSE(route.reachable);
        EXPECT_TRUE(answer.nodes.empty());
        EXPECT_EQ(answer.cost, graph::kUnreachable);
        continue;
      }
      if (src == dst) {
        ASSERT_TRUE(answer.reachable);
        EXPECT_EQ(answer.cost, 0.0);
        EXPECT_EQ(answer.nodes, std::vector<graph::NodeId>{src});
        EXPECT_EQ(route.next_hop, src);
        continue;
      }
      const double ref_cost = reference.dist[static_cast<std::size_t>(dst)];
      if (ref_cost == graph::kUnreachable) {
        EXPECT_FALSE(answer.reachable) << src << "->" << dst;
        EXPECT_FALSE(route.reachable);
        continue;
      }
      ASSERT_TRUE(answer.reachable) << src << "->" << dst;
      // Cost equality with the reference (ties may differ in sequence).
      EXPECT_EQ(answer.cost, ref_cost) << src << "->" << dst;
      EXPECT_EQ(route.cost, ref_cost);
      // The returned sequence must itself be a valid src->dst walk whose
      // announced edge weights sum to the claimed cost.
      ASSERT_GE(answer.nodes.size(), 2u);
      EXPECT_EQ(answer.nodes.front(), src);
      EXPECT_EQ(answer.nodes.back(), dst);
      EXPECT_EQ(route.next_hop, answer.nodes[1]);
      double total = 0.0;
      for (std::size_t i = 0; i + 1 < answer.nodes.size(); ++i) {
        ASSERT_TRUE(announced.has_edge(answer.nodes[i], answer.nodes[i + 1]));
        total += announced.edge_weight(answer.nodes[i], answer.nodes[i + 1]);
      }
      EXPECT_NEAR(total, answer.cost, 1e-9 * (1.0 + answer.cost));
    }
  }

  // Out-of-range ids throw instead of answering garbage.
  EXPECT_THROW((void)pinned.route(-1, 0), std::out_of_range);
  EXPECT_THROW((void)pinned.path(0, n), std::out_of_range);
  EXPECT_THROW((void)pinned.score(n), std::out_of_range);
}

TEST_P(RoutePropertyTest, ScoreMatchesSnapshotNodeCosts) {
  const auto scenario = GetParam();
  host::OverlayHost host(scenario.n, scenario.seed);
  overlay::OverlayConfig config;
  config.policy = scenario.policy;
  config.k = 3;
  config.seed = scenario.seed;
  const auto handle = host.deploy(host::OverlaySpec(config));
  host::RouteService service(host, handle);
  host.run_epochs(handle, 4);

  const auto pinned = service.acquire();
  const auto& snap = pinned.snapshot();
  const auto costs = snap.node_costs();  // full sweep, online order
  const auto& online = snap.online_nodes();
  for (std::size_t i = 0; i < online.size(); ++i) {
    // Single-node score is bit-identical to the matching sweep entry.
    EXPECT_EQ(pinned.score(online[i]), costs[i]) << "node " << online[i];
  }
}

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const auto& s = info.param;
  return (s.policy == overlay::Policy::kHybridBR ? "HybridBR" : "BR") +
         std::string("_n") + std::to_string(s.n) + "_seed" +
         std::to_string(s.seed) + (s.churn ? "_churn" : "_stable");
}

INSTANTIATE_TEST_SUITE_P(
    SmallOverlays, RoutePropertyTest,
    ::testing::Values(Scenario{8, overlay::Policy::kBestResponse, 1, false},
                      Scenario{12, overlay::Policy::kBestResponse, 2, true},
                      Scenario{12, overlay::Policy::kHybridBR, 3, true},
                      Scenario{20, overlay::Policy::kBestResponse, 4, true},
                      Scenario{16, overlay::Policy::kHybridBR, 5, false}),
    scenario_name);

}  // namespace
}  // namespace egoist
