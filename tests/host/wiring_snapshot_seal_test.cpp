// Write-sealing regression: WiringSnapshot::payload_checksum is recorded by
// RouteService at publication and re-verified when the last reader releases
// the view. These tests mutate a published payload behind the service's
// back (const_cast — exactly the write the seal exists to catch) and assert
// reclaim detects it; plus direct checksum determinism/sensitivity checks.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "graph/digraph.hpp"
#include "host/overlay_host.hpp"
#include "host/route_service.hpp"
#include "host/wiring_snapshot.hpp"

namespace egoist {
namespace {

host::OverlaySpec br_spec(std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.k = 3;
  config.seed = seed;
  return host::OverlaySpec(config);
}

/// Bumps the weight of some announced edge in the snapshot's payload —
/// a forbidden write to a published (immutable-by-contract) snapshot.
void corrupt_announced_edge(const host::WiringSnapshot& snap) {
  auto& announced = const_cast<graph::Digraph&>(snap.announced_graph());
  for (const auto src : snap.online_nodes()) {
    const auto edges = announced.out_edges(src);
    if (edges.empty()) continue;
    announced.set_edge(src, edges[0].to, edges[0].weight + 1.0);
    return;
  }
  FAIL() << "no announced edge to corrupt";
}

TEST(WiringSnapshotSeal, ChecksumIsDeterministicAndPayloadSensitive) {
  host::OverlayHost host(12, 5);
  const auto handle = host.deploy(br_spec(17));
  host.run_epochs(handle, 1);

  const auto snap = host.snapshot(handle);
  const auto seal = snap.payload_checksum();
  EXPECT_EQ(snap.payload_checksum(), seal);  // deterministic
  const auto copy = snap;                    // shares the payload
  EXPECT_EQ(copy.payload_checksum(), seal);

  host.run_epochs(handle, 1);
  EXPECT_NE(host.snapshot(handle).payload_checksum(), seal);

  corrupt_announced_edge(snap);  // a single edge-weight flip is caught
  EXPECT_NE(snap.payload_checksum(), seal);
}

TEST(WiringSnapshotSeal, MutatedPayloadIsCaughtAtReaderRelease) {
  host::OverlayHost host(16, 3);
  const auto handle = host.deploy(br_spec(23));
  host::RouteService service(host, handle);  // verify_seals defaults on

  // Pin the initial publication, then let an epoch supersede it.
  auto pinned = std::make_unique<host::ServedSnapshot>(service.acquire());
  host.run_epochs(handle, 1);
  ASSERT_EQ(service.retired_pending(), 1u);

  corrupt_announced_edge(pinned->snapshot());
  pinned.reset();  // last reader releases -> seal re-verified on reclaim
  EXPECT_THROW((void)service.reclaim(), std::logic_error);
  EXPECT_EQ(service.stats().seal_violations, 1u);
  // The violating view is still freed; the retired list does not wedge.
  EXPECT_EQ(service.retired_pending(), 0u);
}

TEST(WiringSnapshotSeal, UntouchedPayloadPassesAtReaderRelease) {
  host::OverlayHost host(16, 3);
  const auto handle = host.deploy(br_spec(23));
  host::RouteService service(host, handle);
  auto pinned = std::make_unique<host::ServedSnapshot>(service.acquire());
  host.run_epochs(handle, 1);
  pinned.reset();
  EXPECT_EQ(service.reclaim(), 1u);
  EXPECT_EQ(service.stats().seal_violations, 0u);
}

TEST(WiringSnapshotSeal, SealingDisabledSkipsVerification) {
  host::OverlayHost host(16, 3);
  const auto handle = host.deploy(br_spec(23));
  host::RouteService::Options options;
  options.verify_seals = false;
  host::RouteService service(host, handle, options);

  auto pinned = std::make_unique<host::ServedSnapshot>(service.acquire());
  host.run_epochs(handle, 1);
  corrupt_announced_edge(pinned->snapshot());
  pinned.reset();
  EXPECT_EQ(service.reclaim(), 1u);  // mutation goes unnoticed by design
  EXPECT_EQ(service.stats().seal_violations, 0u);
}

TEST(WiringSnapshotSeal, DestructionSwallowsSealViolations) {
  host::OverlayHost host(16, 3);
  const auto handle = host.deploy(br_spec(23));
  auto service = std::make_unique<host::RouteService>(host, handle);
  {
    const auto pinned = service->acquire();
    host.run_epochs(handle, 1);
    corrupt_announced_edge(pinned.snapshot());
  }  // released: the retired view is drained but corrupt
  // The destructor's final sweep must not throw.
  EXPECT_NO_THROW(service.reset());
}

}  // namespace
}  // namespace egoist
