// OverlayHost contract tests: the multi-overlay determinism guarantee
// (N overlays on one host == N solo hosts, score for score), snapshot
// immutability across epoch execution, subscription ordering determinism,
// event/engine agreement, and handle lifecycle.
#include "host/overlay_host.hpp"

#include <gtest/gtest.h>

#include "churn/churn.hpp"
#include "exp/common.hpp"

namespace egoist::host {
namespace {

constexpr std::size_t kNodes = 12;
constexpr std::uint64_t kSeed = 11;

OverlaySpec br_spec(std::uint64_t seed) {
  return OverlaySpec()
      .policy(overlay::Policy::kBestResponse)
      .metric(overlay::Metric::kDelayPing)
      .k(3)
      .seed(seed);
}

OverlaySpec closest_spec(std::uint64_t seed) {
  return OverlaySpec()
      .policy(overlay::Policy::kClosest)
      .metric(overlay::Metric::kDelayPing)
      .k(3)
      .seed(seed);
}

TEST(OverlayHostTest, MultiOverlayMatchesSoloRunsScoreForScore) {
  // Two overlays sharing one host (one substrate, two measurement planes)
  // must walk exactly the trajectories they walk when each runs alone on
  // its own host — the paper's "identical conditions" comparison, and the
  // property that makes concurrent deployment a fair experiment.
  constexpr int kEpochs = 4;

  OverlayHost solo_a(kNodes, kSeed);
  const auto a = solo_a.deploy(br_spec(5));
  solo_a.run_epochs(a, kEpochs);

  OverlayHost solo_b(kNodes, kSeed);
  const auto b = solo_b.deploy(closest_spec(6));
  solo_b.run_epochs(b, kEpochs);

  OverlayHost shared(kNodes, kSeed);
  const auto sa = shared.deploy(br_spec(5));
  const auto sb = shared.deploy(closest_spec(6));
  shared.run_epochs(kEpochs);

  const auto solo_a_snap = solo_a.snapshot(a);
  const auto solo_b_snap = solo_b.snapshot(b);
  const auto shared_a_snap = shared.snapshot(sa);
  const auto shared_b_snap = shared.snapshot(sb);

  // Identical wiring, bit for bit identical scores.
  for (std::size_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(shared_a_snap.wiring(static_cast<int>(v)),
              solo_a_snap.wiring(static_cast<int>(v)));
    EXPECT_EQ(shared_b_snap.wiring(static_cast<int>(v)),
              solo_b_snap.wiring(static_cast<int>(v)));
  }
  EXPECT_EQ(shared_a_snap.node_costs(), solo_a_snap.node_costs());
  EXPECT_EQ(shared_b_snap.node_costs(), solo_b_snap.node_costs());
  EXPECT_EQ(shared_a_snap.total_rewirings(), solo_a_snap.total_rewirings());
  EXPECT_EQ(shared_b_snap.total_rewirings(), solo_b_snap.total_rewirings());
}

TEST(OverlayHostTest, MultiOverlayStaggeredChurnMatchesSoloRuns) {
  // The same lockstep property under the staggered T/n scheduler with a
  // churn trace (the Fig 2 configuration).
  constexpr int kEpochs = 3;
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 150.0;
  churn_config.mean_off_s = 50.0;
  churn_config.initial_on_fraction = 0.8;
  const churn::ChurnTrace trace(kNodes, kEpochs * 60.0, 77, churn_config);

  auto staggered = [&](OverlaySpec spec) {
    return spec.epoch_period(60.0).staggered(kSeed ^ 0xBDu).churn(trace);
  };

  OverlayHost solo_a(kNodes, kSeed);
  const auto a = solo_a.deploy(staggered(br_spec(5)));
  solo_a.run_epochs(a, kEpochs);

  OverlayHost solo_b(kNodes, kSeed);
  const auto b = solo_b.deploy(staggered(closest_spec(6)));
  solo_b.run_epochs(b, kEpochs);

  OverlayHost shared(kNodes, kSeed);
  const auto sa = shared.deploy(staggered(br_spec(5)));
  const auto sb = shared.deploy(staggered(closest_spec(6)));
  shared.run_epochs(kEpochs);

  EXPECT_EQ(shared.snapshot(sa).node_efficiencies(),
            solo_a.snapshot(a).node_efficiencies());
  EXPECT_EQ(shared.snapshot(sb).node_efficiencies(),
            solo_b.snapshot(b).node_efficiencies());
  EXPECT_EQ(shared.snapshot(sa).online_nodes(), solo_a.snapshot(a).online_nodes());
  EXPECT_EQ(shared.total_rewirings(sa), solo_a.total_rewirings(a));
  EXPECT_EQ(shared.total_rewirings(sb), solo_b.total_rewirings(b));
}

TEST(OverlayHostTest, MultiOverlayMatchesSoloRunsOnProceduralBackend) {
  // The lockstep guarantee re-proven on the procedural underlay: sparse
  // measurement planes with hash-derived drift must fork identically per
  // overlay, so N overlays on one host still equal N solo runs.
  constexpr int kEpochs = 4;
  overlay::EnvironmentConfig env;
  env.underlay = net::UnderlayKind::kProcedural;
  env.coord_warmup_rounds = 10;

  OverlayHost solo_a(kNodes, kSeed, env);
  const auto a = solo_a.deploy(br_spec(5));
  solo_a.run_epochs(a, kEpochs);

  OverlayHost solo_b(kNodes, kSeed, env);
  const auto b = solo_b.deploy(closest_spec(6));
  solo_b.run_epochs(b, kEpochs);

  OverlayHost shared(kNodes, kSeed, env);
  const auto sa = shared.deploy(br_spec(5));
  const auto sb = shared.deploy(closest_spec(6));
  shared.run_epochs(kEpochs);

  const auto solo_a_snap = solo_a.snapshot(a);
  const auto solo_b_snap = solo_b.snapshot(b);
  const auto shared_a_snap = shared.snapshot(sa);
  const auto shared_b_snap = shared.snapshot(sb);
  for (std::size_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(shared_a_snap.wiring(static_cast<int>(v)),
              solo_a_snap.wiring(static_cast<int>(v)));
    EXPECT_EQ(shared_b_snap.wiring(static_cast<int>(v)),
              solo_b_snap.wiring(static_cast<int>(v)));
  }
  EXPECT_EQ(shared_a_snap.node_costs(), solo_a_snap.node_costs());
  EXPECT_EQ(shared_b_snap.node_costs(), solo_b_snap.node_costs());
  EXPECT_EQ(shared_a_snap.total_rewirings(), solo_a_snap.total_rewirings());
  EXPECT_EQ(shared_b_snap.total_rewirings(), solo_b_snap.total_rewirings());
}

TEST(OverlayHostTest, MultiOverlayStaggeredChurnMatchesSoloRunsOnProceduralBackend) {
  // The staggered T/n + churn lockstep property on the procedural backend.
  constexpr int kEpochs = 3;
  overlay::EnvironmentConfig env;
  env.underlay = net::UnderlayKind::kProcedural;
  env.coord_warmup_rounds = 10;

  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 150.0;
  churn_config.mean_off_s = 50.0;
  churn_config.initial_on_fraction = 0.8;
  const churn::ChurnTrace trace(kNodes, kEpochs * 60.0, 77, churn_config);

  auto staggered = [&](OverlaySpec spec) {
    return spec.epoch_period(60.0).staggered(kSeed ^ 0xBDu).churn(trace);
  };

  OverlayHost solo_a(kNodes, kSeed, env);
  const auto a = solo_a.deploy(staggered(br_spec(5)));
  solo_a.run_epochs(a, kEpochs);

  OverlayHost solo_b(kNodes, kSeed, env);
  const auto b = solo_b.deploy(staggered(closest_spec(6)));
  solo_b.run_epochs(b, kEpochs);

  OverlayHost shared(kNodes, kSeed, env);
  const auto sa = shared.deploy(staggered(br_spec(5)));
  const auto sb = shared.deploy(staggered(closest_spec(6)));
  shared.run_epochs(kEpochs);

  EXPECT_EQ(shared.snapshot(sa).node_efficiencies(),
            solo_a.snapshot(a).node_efficiencies());
  EXPECT_EQ(shared.snapshot(sb).node_efficiencies(),
            solo_b.snapshot(b).node_efficiencies());
  EXPECT_EQ(shared.snapshot(sa).online_nodes(), solo_a.snapshot(a).online_nodes());
  EXPECT_EQ(shared.total_rewirings(sa), solo_a.total_rewirings(a));
  EXPECT_EQ(shared.total_rewirings(sb), solo_b.total_rewirings(b));
}

TEST(OverlayHostTest, SnapshotsAreImmutableAcrossEpochExecution) {
  OverlayHost host(kNodes, kSeed);
  const auto overlay = host.deploy(br_spec(5));
  host.run_epochs(overlay, 1);

  const auto before = host.snapshot(overlay);
  const auto costs_before = before.node_costs();
  const auto wiring_before = before.wiring(0);
  const double time_before = before.time();

  host.run_epochs(overlay, 5);

  // The captured state did not move with the overlay...
  EXPECT_EQ(before.epoch(), 1);
  EXPECT_EQ(before.time(), time_before);
  EXPECT_EQ(before.wiring(0), wiring_before);
  EXPECT_EQ(before.node_costs(), costs_before);

  // ...while the live overlay did (and a fresh snapshot shows it).
  const auto after = host.snapshot(overlay);
  EXPECT_EQ(after.epoch(), 6);
  EXPECT_GT(after.time(), time_before);
  EXPECT_NE(after.node_costs(), costs_before);

  // Copies share the same immutable payload.
  const WiringSnapshot copy = before;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.node_costs(), costs_before);
  EXPECT_EQ(&copy.announced_graph(), &before.announced_graph());
}

TEST(OverlayHostTest, SubscriptionsFireInSubscriptionOrder) {
  OverlayHost host(kNodes, kSeed);
  const auto overlay = host.deploy(br_spec(5));

  std::vector<int> order;
  host.on_epoch_end(overlay, [&](const EpochEvent&) { order.push_back(1); });
  const auto middle =
      host.on_epoch_end(overlay, [&](const EpochEvent&) { order.push_back(2); });
  host.on_epoch_end(overlay, [&](const EpochEvent&) { order.push_back(3); });

  host.run_epochs(overlay, 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 1, 2, 3}));

  order.clear();
  host.unsubscribe(middle);
  host.run_epochs(overlay, 1);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(OverlayHostTest, RewireEventsAgreeWithEpochAccounting) {
  OverlayHost host(kNodes, kSeed);
  const auto overlay = host.deploy(br_spec(5));

  std::vector<int> rewires_by_epoch;
  std::vector<int> reported_by_epoch;
  host.on_rewire(overlay, [&](const RewireEvent& event) {
    EXPECT_NE(event.old_wiring, event.new_wiring);
    rewires_by_epoch.resize(static_cast<std::size_t>(event.epoch), 0);
    ++rewires_by_epoch[static_cast<std::size_t>(event.epoch - 1)];
  });
  host.on_epoch_end(overlay, [&](const EpochEvent& event) {
    reported_by_epoch.push_back(event.rewired);
  });

  host.run_epochs(overlay, 4);
  rewires_by_epoch.resize(4, 0);
  ASSERT_EQ(reported_by_epoch.size(), 4u);
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(rewires_by_epoch[static_cast<std::size_t>(e)],
              reported_by_epoch[static_cast<std::size_t>(e)])
        << "epoch " << e + 1;
  }
  const int total = rewires_by_epoch[0] + rewires_by_epoch[1] +
                    rewires_by_epoch[2] + rewires_by_epoch[3];
  EXPECT_EQ(static_cast<std::uint64_t>(total), host.total_rewirings(overlay));
}

TEST(OverlayHostTest, MembershipEventsFollowTheChurnTrace) {
  constexpr int kEpochs = 3;
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 100.0;
  churn_config.mean_off_s = 40.0;
  const churn::ChurnTrace trace(kNodes, kEpochs * 60.0, 31, churn_config);

  OverlayHost host(kNodes, kSeed);
  const auto overlay = host.deploy(
      br_spec(5).epoch_period(60.0).staggered(3).churn(trace));

  std::vector<std::pair<int, bool>> observed;
  host.on_membership_change(overlay, [&](const MembershipEvent& event) {
    observed.emplace_back(event.node, event.online);
  });
  host.run_epochs(overlay, kEpochs);

  // Every trace event within the replayed horizon surfaced, in order.
  // (The initial ON/OFF state is deploy-time setup, not events.)
  std::vector<std::pair<int, bool>> expected;
  for (const auto& ev : trace.events()) {
    if (ev.time <= kEpochs * 60.0) expected.emplace_back(ev.node, ev.on);
  }
  EXPECT_EQ(observed, expected);
}

TEST(OverlayHostTest, RunEpochsTargetsTheGivenHandle) {
  OverlayHost host(kNodes, kSeed);
  const auto fast = host.deploy(br_spec(5).epoch_period(30.0));
  const auto slow = host.deploy(closest_spec(6).epoch_period(60.0));

  host.run_epochs(fast, 4);  // 4 x 30s
  EXPECT_EQ(host.epochs_run(fast), 4);
  EXPECT_EQ(host.epochs_run(slow), 2);  // advanced on the shared clock

  host.run_epochs(slow, 2);
  EXPECT_EQ(host.epochs_run(slow), 4);
}

TEST(OverlayHostTest, RetireStopsDrivingAndInvalidatesTheHandle) {
  OverlayHost host(kNodes, kSeed);
  // Deployed first, so its events fire before keep's at shared timestamps
  // (FIFO) and run_epochs(keep, ...) leaves it fully caught up.
  const auto gone = host.deploy(closest_spec(6));
  const auto keep = host.deploy(br_spec(5));

  int gone_epochs = 0;
  host.on_epoch_end(gone, [&](const EpochEvent&) { ++gone_epochs; });
  host.run_epochs(keep, 2);
  EXPECT_EQ(gone_epochs, 2);

  const auto last = host.snapshot(gone);  // outlives the overlay
  host.retire(gone);
  EXPECT_FALSE(host.alive(gone));
  EXPECT_TRUE(host.alive(keep));
  ASSERT_EQ(host.overlays().size(), 1u);
  EXPECT_EQ(host.overlays().front(), keep);

  host.run_epochs(keep, 2);
  EXPECT_EQ(gone_epochs, 2);  // no further events after retirement
  EXPECT_EQ(last.epoch(), 2);  // the snapshot still reads fine

  EXPECT_THROW(host.snapshot(gone), std::invalid_argument);
  EXPECT_THROW(host.run_epochs(gone, 1), std::invalid_argument);
  EXPECT_THROW(host.retire(gone), std::invalid_argument);
  EXPECT_THROW(host.on_epoch_end(gone, [](const EpochEvent&) {}),
               std::invalid_argument);
}

TEST(OverlayHostTest, RetireFromInsideACallbackIsSafe) {
  // The "stop when converged" pattern: a subscriber retires the overlay
  // whose event it is handling. The in-flight tick must complete on live
  // storage (the ASan CI job guards this) and the handle must be gone
  // afterwards.
  OverlayHost host(kNodes, kSeed);
  const auto stopping = host.deploy(br_spec(5));
  const auto running = host.deploy(closest_spec(6));

  host.on_epoch_end(stopping, [&](const EpochEvent& event) {
    if (event.epoch == 2) host.retire(event.overlay);
  });
  host.run_epochs(running, 4);

  EXPECT_FALSE(host.alive(stopping));
  EXPECT_TRUE(host.alive(running));
  EXPECT_EQ(host.epochs_run(running), 4);
}

TEST(OverlayHostTest, SynchronizedChurnCountsImmediateRepairsInEpochEvents) {
  // With aggressive churn and immediate re-wiring, repairs triggered by a
  // departure (outside run_epoch) still belong to the epoch: the
  // EpochEvent.rewired count must equal the RewireEvents a subscriber saw,
  // in both scheduling modes.
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 120.0;
  churn_config.mean_off_s = 40.0;
  churn_config.initial_on_fraction = 0.9;
  const churn::ChurnTrace trace(kNodes, 4 * 60.0, 91, churn_config);

  OverlayHost host(kNodes, kSeed);
  const auto overlay =
      host.deploy(br_spec(5).rewire_mode(overlay::RewireMode::kImmediate)
                      .epoch_period(60.0)
                      .churn(trace));

  int observed = 0;
  int reported = 0;
  std::uint64_t last_total = 0;
  host.on_rewire(overlay, [&](const RewireEvent&) { ++observed; });
  host.on_epoch_end(overlay, [&](const EpochEvent& event) {
    reported += event.rewired;
    last_total = event.total_rewirings;
  });
  host.run_epochs(overlay, 4);

  EXPECT_EQ(observed, reported);
  EXPECT_GT(reported, 0);
  // total_rewirings is the engine's lifetime count; it may additionally
  // include deploy-time setup repairs from the trace's initial OFF state,
  // which are neither events nor epoch activity.
  EXPECT_EQ(last_total, host.total_rewirings(overlay));
  EXPECT_GE(last_total, static_cast<std::uint64_t>(reported));
}

TEST(OverlayHostTest, EpochJitterDesynchronizesWithoutDriftingTheGrid) {
  OverlayHost host(kNodes, kSeed);
  const auto plain = host.deploy(br_spec(5));
  const auto jittered = host.deploy(
      br_spec(5).epoch_jitter([](std::uint64_t occurrence) {
        return occurrence % 2 == 0 ? 1.5 : -1.5;
      }));

  std::vector<double> plain_times, jittered_times;
  host.on_epoch_end(plain, [&](const EpochEvent& event) {
    plain_times.push_back(event.time);
  });
  host.on_epoch_end(jittered, [&](const EpochEvent& event) {
    jittered_times.push_back(event.time);
  });

  host.run_epochs(3);
  EXPECT_EQ(plain_times, (std::vector<double>{60.0, 120.0, 180.0}));
  EXPECT_EQ(jittered_times, (std::vector<double>{61.5, 118.5, 181.5}));
  // Jitter moves event times, not results: both overlays share the spec
  // seed, so their trajectories stay identical.
  EXPECT_EQ(host.snapshot(plain).node_costs(),
            host.snapshot(jittered).node_costs());
}

TEST(OverlayHostTest, RunAndScoreMatchesPerOverlaySoloRuns) {
  // The exp::run_and_score helper on a two-overlay host reproduces the
  // solo numbers as well (it is the porting surface for the figure
  // experiments, so this is the contract the byte-identical figures rest
  // on).
  exp::RunOptions options;
  options.warmup_epochs = 2;
  options.sample_epochs = 2;

  OverlayHost shared(kNodes, kSeed);
  const auto sa = shared.deploy(br_spec(5));
  const auto sb = shared.deploy(closest_spec(6));
  const auto both = exp::run_and_score(shared, {sa, sb},
                                       exp::Score::kRoutingCost, options);

  const auto solo = exp::run_single(kNodes, kSeed, br_spec(5).config(),
                                    exp::Score::kRoutingCost, options);
  EXPECT_EQ(both[0].node_means, solo.node_means);
  EXPECT_EQ(both[0].rewirings_per_epoch, solo.rewirings_per_epoch);

  const auto solo_b = exp::run_single(kNodes, kSeed, closest_spec(6).config(),
                                      exp::Score::kRoutingCost, options);
  EXPECT_EQ(both[1].node_means, solo_b.node_means);
}

TEST(OverlayHostTest, DeployValidation) {
  OverlayHost host(kNodes, kSeed);
  EXPECT_THROW(host.deploy(br_spec(5).epoch_period(-1.0)), std::invalid_argument);
  const churn::ChurnTrace mismatched(kNodes + 1, 60.0, 1);
  EXPECT_THROW(host.deploy(br_spec(5).churn(mismatched)), std::invalid_argument);
  // Engine config validation still applies at deploy (k >= n).
  EXPECT_THROW(host.deploy(br_spec(5).k(kNodes)), std::invalid_argument);
  // Invalid handles are rejected everywhere.
  EXPECT_THROW(host.snapshot(OverlayHandle{}), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::host
