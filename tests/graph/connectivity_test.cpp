#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

namespace egoist::graph {
namespace {

Digraph cycle(int n) {
  Digraph g(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) g.set_edge(u, (u + 1) % n, 1.0);
  return g;
}

TEST(ReachabilityTest, FullCycleReachesAll) {
  const auto g = cycle(5);
  EXPECT_EQ(reachable_count(g, 0), 5u);
  EXPECT_EQ(reachable_set(g, 2).size(), 5u);
}

TEST(ReachabilityTest, ChainReachesDownstreamOnly) {
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  EXPECT_EQ(reachable_count(g, 1), 2u);  // 1 and 2
  EXPECT_EQ(reachable_count(g, 3), 1u);  // itself
}

TEST(ReachabilityTest, InactiveSourceEmpty) {
  auto g = cycle(4);
  g.set_active(0, false);
  EXPECT_TRUE(reachable_set(g, 0).empty());
}

TEST(ReachabilityTest, InactiveNodeBlocksTransit) {
  auto g = cycle(4);  // 0->1->2->3->0
  g.set_active(1, false);
  EXPECT_EQ(reachable_count(g, 0), 1u);
}

TEST(StrongConnectivityTest, CycleIsStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(cycle(6)));
}

TEST(StrongConnectivityTest, ChainIsNot) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  EXPECT_FALSE(is_strongly_connected(g));
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(StrongConnectivityTest, TrivialGraphsConnected) {
  EXPECT_TRUE(is_strongly_connected(Digraph(1)));
  EXPECT_TRUE(is_strongly_connected(Digraph(0)));
  EXPECT_TRUE(is_weakly_connected(Digraph(1)));
}

TEST(StrongConnectivityTest, IgnoresInactiveNodes) {
  auto g = cycle(4);
  Digraph h(5);  // node 4 is isolated but OFF
  for (NodeId u = 0; u < 4; ++u) h.set_edge(u, (u + 1) % 4, 1.0);
  h.set_active(4, false);
  EXPECT_TRUE(is_strongly_connected(h));
  h.set_active(4, true);
  EXPECT_FALSE(is_strongly_connected(h));
}

TEST(WeakConnectivityTest, TwoComponentsDetected) {
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(2, 3, 1.0);
  EXPECT_FALSE(is_weakly_connected(g));
}

TEST(StrongConnectivityTest, OneWayBridgeIsWeakOnly) {
  // Two cycles joined by a single one-way edge.
  Digraph g(6);
  for (NodeId u = 0; u < 3; ++u) g.set_edge(u, (u + 1) % 3, 1.0);
  for (NodeId u = 3; u < 6; ++u) g.set_edge(u, 3 + (u - 3 + 1) % 3, 1.0);
  g.set_edge(0, 3, 1.0);
  EXPECT_FALSE(is_strongly_connected(g));
  EXPECT_TRUE(is_weakly_connected(g));
}

}  // namespace
}  // namespace egoist::graph
