#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace egoist::graph {
namespace {

TEST(DigraphTest, StartsEmptyAndActive) {
  Digraph g(4);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(g.is_active(v));
}

TEST(DigraphTest, SetEdgeAddsAndUpdates) {
  Digraph g(3);
  g.set_edge(0, 1, 5.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 5.0);
  EXPECT_EQ(g.edge_count(), 1u);
  g.set_edge(0, 1, 2.5);  // update, not duplicate
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.5);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DigraphTest, EdgesAreDirected) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(DigraphTest, AsymmetricWeightsAllowed) {
  Digraph g(2);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 0, 9.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 9.0);
}

TEST(DigraphTest, RemoveEdge) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.remove_edge(0, 1));  // second removal is a no-op
}

TEST(DigraphTest, ClearOutEdges) {
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(0, 2, 1.0);
  g.set_edge(1, 2, 1.0);
  g.clear_out_edges(0);
  EXPECT_EQ(g.out_degree(0), 0u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(DigraphTest, RejectsSelfLoop) {
  Digraph g(2);
  EXPECT_THROW(g.set_edge(1, 1, 1.0), std::invalid_argument);
}

TEST(DigraphTest, RejectsOutOfRangeNodes) {
  Digraph g(2);
  EXPECT_THROW(g.set_edge(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(g.set_edge(-1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(g.is_active(5), std::out_of_range);
  EXPECT_THROW(g.edge_weight(0, 1), std::out_of_range);
}

TEST(DigraphTest, ActiveFlagToggles) {
  Digraph g(3);
  g.set_active(1, false);
  EXPECT_FALSE(g.is_active(1));
  EXPECT_EQ(g.active_nodes(), (std::vector<NodeId>{0, 2}));
  g.set_active(1, true);
  EXPECT_EQ(g.active_nodes(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(DigraphTest, OutEdgesSpanReflectsAdjacency) {
  Digraph g(4);
  g.set_edge(2, 0, 1.0);
  g.set_edge(2, 3, 2.0);
  const auto out = g.out_edges(2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].to, 0);
  EXPECT_EQ(out[1].to, 3);
}

}  // namespace
}  // namespace egoist::graph
