#include "graph/widest_path.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace egoist::graph {
namespace {

// 0 ->1 (bw 10), 1->2 (bw 3), 0->2 (bw 2): widest 0->2 goes via 1 (min 3).
Digraph bw_triangle() {
  Digraph g(3);
  g.set_edge(0, 1, 10.0);
  g.set_edge(1, 2, 3.0);
  g.set_edge(0, 2, 2.0);
  return g;
}

TEST(WidestPathTest, PrefersHigherBottleneck) {
  const auto tree = widest_paths(bw_triangle(), 0);
  EXPECT_DOUBLE_EQ(tree.bottleneck[2], 3.0);
  EXPECT_EQ(tree.parent[2], 1);
}

TEST(WidestPathTest, SourceIsInfinite) {
  const auto tree = widest_paths(bw_triangle(), 0);
  EXPECT_EQ(tree.bottleneck[0], std::numeric_limits<double>::infinity());
}

TEST(WidestPathTest, UnreachableIsZero) {
  Digraph g(3);
  g.set_edge(0, 1, 5.0);
  const auto tree = widest_paths(g, 0);
  EXPECT_DOUBLE_EQ(tree.bottleneck[2], 0.0);
}

TEST(WidestPathTest, DirectEdgeWinsWhenWider) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  g.set_edge(0, 2, 7.0);
  const auto tree = widest_paths(g, 0);
  EXPECT_DOUBLE_EQ(tree.bottleneck[2], 7.0);
  EXPECT_EQ(tree.parent[2], 0);
}

TEST(WidestPathTest, InactiveRelayExcluded) {
  auto g = bw_triangle();
  g.set_active(1, false);
  const auto tree = widest_paths(g, 0);
  EXPECT_DOUBLE_EQ(tree.bottleneck[2], 2.0);  // forced onto the thin edge
}

TEST(WidestPathTest, NegativeBandwidthRejected) {
  Digraph g(2);
  g.set_edge(0, 1, -2.0);
  EXPECT_THROW(widest_paths(g, 0), std::invalid_argument);
}

TEST(AllPairsWidestTest, MatchesPerSource) {
  const auto g = bw_triangle();
  const auto all = all_pairs_widest_paths(g);
  for (NodeId u = 0; u < 3; ++u) {
    const auto tree = widest_paths(g, u);
    for (NodeId v = 0; v < 3; ++v) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                       tree.bottleneck[static_cast<std::size_t>(v)]);
    }
  }
}

// Brute-force check on random graphs: widest bottleneck via DFS over all
// simple paths equals the Dijkstra-variant answer.
double brute_widest(const Digraph& g, NodeId u, NodeId t, double bottleneck,
                    std::vector<bool>& visited) {
  if (u == t) return bottleneck;
  visited[static_cast<std::size_t>(u)] = true;
  double best = 0.0;
  for (const Edge& e : g.out_edges(u)) {
    if (visited[static_cast<std::size_t>(e.to)]) continue;
    best = std::max(best, brute_widest(g, e.to, t, std::min(bottleneck, e.weight),
                                       visited));
  }
  visited[static_cast<std::size_t>(u)] = false;
  return best;
}

class WidestPathRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(WidestPathRandomTest, AgreesWithBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  const int n = 9;
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 0; j < 3; ++j) {
      const NodeId v = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      if (v != u) g.set_edge(u, v, rng.uniform(1.0, 100.0));
    }
  }
  const auto tree = widest_paths(g, 0);
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  for (NodeId t = 1; t < n; ++t) {
    const double expected = brute_widest(
        g, 0, t, std::numeric_limits<double>::infinity(), visited);
    EXPECT_NEAR(tree.bottleneck[static_cast<std::size_t>(t)], expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidestPathRandomTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace egoist::graph
