#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/delay_space.hpp"

namespace egoist::graph {
namespace {

TEST(MstTest, TwoNodesSingleEdge) {
  const auto tree = minimum_spanning_tree(
      {0, 1}, [](NodeId, NodeId) { return 4.0; });
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree[0].weight, 4.0);
}

TEST(MstTest, PicksCheapEdgesOnKnownInstance) {
  // Distances: 0-1: 1, 0-2: 5, 1-2: 2 -> MST = {0-1, 1-2}, weight 3.
  auto cost = [](NodeId a, NodeId b) {
    const int lo = std::min(a, b), hi = std::max(a, b);
    if (lo == 0 && hi == 1) return 1.0;
    if (lo == 0 && hi == 2) return 5.0;
    return 2.0;
  };
  const auto tree = minimum_spanning_tree({0, 1, 2}, cost);
  double total = 0.0;
  for (const auto& e : tree) total += e.weight;
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(MstTest, SpansAllNodes) {
  const auto delays = net::make_planetlab_like(20, 3);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 20; ++v) nodes.push_back(v);
  const auto tree = minimum_spanning_tree(
      nodes, [&](NodeId a, NodeId b) { return delays.delay(a, b); });
  EXPECT_EQ(tree.size(), 19u);
  // Union-find-free check: adjacency reaches everyone from node 0.
  const auto adj = tree_adjacency(20, tree);
  std::set<NodeId> seen{0};
  std::vector<NodeId> frontier{0};
  while (!frontier.empty()) {
    const NodeId at = frontier.back();
    frontier.pop_back();
    for (NodeId v : adj[static_cast<std::size_t>(at)]) {
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(MstTest, SymmetrizesAsymmetricCosts) {
  // cost(0,1)=2, cost(1,0)=6 -> tree weight uses the mean 4.
  auto cost = [](NodeId a, NodeId b) { return a < b ? 2.0 : 6.0; };
  const auto tree = minimum_spanning_tree({0, 1}, cost);
  EXPECT_DOUBLE_EQ(tree[0].weight, 4.0);
}

TEST(MstTest, TotalWeightNotWorseThanStar) {
  // MST weight <= weight of the star rooted anywhere.
  const auto delays = net::make_planetlab_like(15, 7);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 15; ++v) nodes.push_back(v);
  auto sym = [&](NodeId a, NodeId b) {
    return (delays.delay(a, b) + delays.delay(b, a)) / 2.0;
  };
  const auto tree = minimum_spanning_tree(
      nodes, [&](NodeId a, NodeId b) { return delays.delay(a, b); });
  double mst_weight = 0.0;
  for (const auto& e : tree) mst_weight += e.weight;
  for (NodeId root = 0; root < 15; ++root) {
    double star = 0.0;
    for (NodeId v = 0; v < 15; ++v) {
      if (v != root) star += sym(root, v);
    }
    EXPECT_LE(mst_weight, star + 1e-9);
  }
}

TEST(MstTest, Rejections) {
  EXPECT_THROW(minimum_spanning_tree({0}, [](NodeId, NodeId) { return 1.0; }),
               std::invalid_argument);
  EXPECT_THROW(minimum_spanning_tree({0, 1}, nullptr), std::invalid_argument);
  EXPECT_THROW(tree_adjacency(2, {TreeEdge{0, 5, 1.0}}), std::out_of_range);
}

}  // namespace
}  // namespace egoist::graph
