#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/shortest_path.hpp"

namespace egoist::graph {
namespace {

TEST(RoutingCostTest, WeightsByPreference) {
  const std::vector<double> dist{0.0, 2.0, 4.0};
  const std::vector<double> pref{0.0, 0.75, 0.25};
  EXPECT_DOUBLE_EQ(routing_cost(dist, pref, 0, 1000.0), 0.75 * 2.0 + 0.25 * 4.0);
}

TEST(RoutingCostTest, UnreachableUsesPenalty) {
  const std::vector<double> dist{0.0, kUnreachable};
  const std::vector<double> pref{0.0, 1.0};
  EXPECT_DOUBLE_EQ(routing_cost(dist, pref, 0, 500.0), 500.0);
}

TEST(RoutingCostTest, SizeMismatchRejected) {
  EXPECT_THROW(routing_cost({0.0, 1.0}, {1.0}, 0, 1.0), std::invalid_argument);
}

TEST(UniformRoutingCostTest, AveragesOverTargets) {
  const std::vector<double> dist{0.0, 2.0, 4.0, 6.0};
  const std::vector<NodeId> targets{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(uniform_routing_cost(dist, 0, targets, 100.0), (2.0 + 4.0 + 6.0) / 3.0);
}

TEST(UniformRoutingCostTest, EmptyTargetsZero) {
  EXPECT_DOUBLE_EQ(uniform_routing_cost({0.0}, 0, {0}, 10.0), 0.0);
}

TEST(EfficiencyTest, PerfectlyConnectedUnitGraph) {
  // All distances 1 -> efficiency exactly 1.
  const std::vector<double> dist{0.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(node_efficiency(dist, 0, {0, 1, 2, 3}), 1.0);
}

TEST(EfficiencyTest, DisconnectedContributesZero) {
  const std::vector<double> dist{0.0, 1.0, kUnreachable};
  EXPECT_DOUBLE_EQ(node_efficiency(dist, 0, {0, 1, 2}), 0.5);
}

TEST(EfficiencyTest, FullyDisconnectedIsZero) {
  const std::vector<double> dist{0.0, kUnreachable, kUnreachable};
  EXPECT_DOUBLE_EQ(node_efficiency(dist, 0, {0, 1, 2}), 0.0);
}

TEST(EfficiencyTest, FartherIsLess) {
  const std::vector<double> near{0.0, 1.0};
  const std::vector<double> far{0.0, 10.0};
  EXPECT_GT(node_efficiency(near, 0, {0, 1}), node_efficiency(far, 0, {0, 1}));
}

TEST(NeighborhoodTest, CountsWithinRadius) {
  // Chain 0->1->2->3.
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  g.set_edge(2, 3, 1.0);
  EXPECT_EQ(r_hop_neighborhood_size(g, 0, 1), 1u);
  EXPECT_EQ(r_hop_neighborhood_size(g, 0, 2), 2u);
  EXPECT_EQ(r_hop_neighborhood_size(g, 0, 3), 3u);
  EXPECT_EQ(r_hop_neighborhood_size(g, 0, 0), 0u);
}

TEST(NeighborhoodTest, ExcludesSelfEvenOnCycle) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  g.set_edge(2, 0, 1.0);
  EXPECT_EQ(r_hop_neighborhood_size(g, 0, 10), 2u);
}

TEST(NeighborhoodTest, MembersAreCorrect) {
  Digraph g(4);
  g.set_edge(0, 2, 1.0);
  g.set_edge(2, 3, 1.0);
  EXPECT_EQ(r_hop_neighborhood(g, 0, 1), (std::vector<NodeId>{2}));
  EXPECT_EQ(r_hop_neighborhood(g, 0, 2), (std::vector<NodeId>{2, 3}));
}

TEST(NeighborhoodTest, NegativeRadiusRejected) {
  Digraph g(2);
  EXPECT_THROW(r_hop_neighborhood_size(g, 0, -1), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::graph
