#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace egoist::graph {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow mf(2);
  mf.add_arc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(mf.max_flow(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(mf.arc_flow(0), 5.0);
}

TEST(MaxFlowTest, SeriesBottleneck) {
  MaxFlow mf(3);
  mf.add_arc(0, 1, 10.0);
  mf.add_arc(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(mf.max_flow(0, 2), 4.0);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow mf(4);
  mf.add_arc(0, 1, 3.0);
  mf.add_arc(1, 3, 3.0);
  mf.add_arc(0, 2, 2.0);
  mf.add_arc(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(mf.max_flow(0, 3), 5.0);
}

TEST(MaxFlowTest, ClassicCLRSNetwork) {
  // CLRS Figure 26.1 instance; known max flow 23.
  MaxFlow mf(6);
  mf.add_arc(0, 1, 16.0);
  mf.add_arc(0, 2, 13.0);
  mf.add_arc(1, 2, 10.0);
  mf.add_arc(2, 1, 4.0);
  mf.add_arc(1, 3, 12.0);
  mf.add_arc(3, 2, 9.0);
  mf.add_arc(2, 4, 14.0);
  mf.add_arc(4, 3, 7.0);
  mf.add_arc(3, 5, 20.0);
  mf.add_arc(4, 5, 4.0);
  EXPECT_DOUBLE_EQ(mf.max_flow(0, 5), 23.0);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow mf(3);
  mf.add_arc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(mf.max_flow(0, 2), 0.0);
}

TEST(MaxFlowTest, RejectsBadInput) {
  MaxFlow mf(2);
  EXPECT_THROW(mf.add_arc(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(mf.add_arc(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(mf.max_flow(0, 0), std::invalid_argument);
}

TEST(MaxFlowOnGraphTest, UsesEdgeWeightsAsCapacities) {
  Digraph g(3);
  g.set_edge(0, 1, 6.0);
  g.set_edge(1, 2, 2.0);
  g.set_edge(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(max_flow_on_graph(g, 0, 2), 3.0);
}

TEST(MaxFlowOnGraphTest, InactiveNodesCarryNoFlow) {
  Digraph g(3);
  g.set_edge(0, 1, 6.0);
  g.set_edge(1, 2, 6.0);
  g.set_active(1, false);
  EXPECT_DOUBLE_EQ(max_flow_on_graph(g, 0, 2), 0.0);
}

TEST(DisjointPathsTest, CountsEdgeDisjointPaths) {
  Digraph g(4);
  // Two edge-disjoint 0->3 paths: 0-1-3 and 0-2-3.
  g.set_edge(0, 1, 9.0);
  g.set_edge(1, 3, 9.0);
  g.set_edge(0, 2, 9.0);
  g.set_edge(2, 3, 9.0);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 3), 2);
}

TEST(DisjointPathsTest, SharedEdgeLimits) {
  Digraph g(5);
  // Both routes share edge 3->4.
  g.set_edge(0, 1, 1.0);
  g.set_edge(0, 2, 1.0);
  g.set_edge(1, 3, 1.0);
  g.set_edge(2, 3, 1.0);
  g.set_edge(3, 4, 1.0);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 4), 1);
}

TEST(DisjointPathsTest, NodeDisjointStricterThanEdgeDisjoint) {
  Digraph g(6);
  // Two edge-disjoint paths share relay node 3:
  // 0-1-3-4-5 and 0-2-3-... need a second exit from 3.
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 3, 1.0);
  g.set_edge(0, 2, 1.0);
  g.set_edge(2, 3, 1.0);
  g.set_edge(3, 4, 1.0);
  g.set_edge(4, 5, 1.0);
  g.set_edge(3, 5, 1.0);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 5), 2);
  EXPECT_EQ(node_disjoint_paths(g, 0, 5), 1);  // both must cross node 3
}

TEST(DisjointPathsTest, DirectEdgePlusRelayAreNodeDisjoint) {
  Digraph g(3);
  g.set_edge(0, 2, 1.0);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  EXPECT_EQ(node_disjoint_paths(g, 0, 2), 2);
}

// Property: max flow equals a min cut on random unit-capacity graphs —
// verified indirectly as: disjoint path count <= min(outdeg(s), indeg(t)).
class DisjointPathsRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DisjointPathsRandomTest, BoundedByDegrees) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const int n = 16;
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 0; j < 3; ++j) {
      const NodeId v = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      if (v != u) g.set_edge(u, v, 1.0);
    }
  }
  int in_deg_t = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (u != n - 1 && g.has_edge(u, n - 1)) ++in_deg_t;
  }
  const int paths = edge_disjoint_paths(g, 0, n - 1);
  EXPECT_LE(paths, static_cast<int>(g.out_degree(0)));
  EXPECT_LE(paths, in_deg_t);
  EXPECT_LE(node_disjoint_paths(g, 0, n - 1), paths);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointPathsRandomTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace egoist::graph
