#include "graph/path_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "graph/shortest_path.hpp"
#include "graph/widest_path.hpp"
#include "util/rng.hpp"

namespace egoist::graph {
namespace {

// ---------------------------------------------------------------------------
// DistanceMatrix

TEST(DistanceMatrixTest, FlatRowMajorLayout) {
  DistanceMatrix m(2, 3, 7.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  m(1, 2) = 42.0;
  EXPECT_DOUBLE_EQ(m.row(1)[2], 42.0);
  EXPECT_DOUBLE_EQ(m.row(0)[2], 7.0);
}

TEST(DistanceMatrixTest, FromNestedCopiesAndValidates) {
  const auto m = DistanceMatrix::from_nested({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(DistanceMatrix::from_nested({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
}

TEST(DistanceMatrixTest, ResetReshapesAndRefills) {
  DistanceMatrix m(2, 2, 1.0);
  m.reset(3, 3, kUnreachable);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(2, 2), kUnreachable);
}

// ---------------------------------------------------------------------------
// CsrGraph

TEST(CsrGraphTest, SnapshotsEdgesAndActivity) {
  Digraph g(4);
  g.set_edge(0, 1, 1.5);
  g.set_edge(0, 2, 2.5);
  g.set_edge(1, 2, 3.5);
  g.set_active(3, false);
  g.set_edge(2, 3, 9.0);  // target inactive: dropped from the snapshot
  CsrGraph csr(g);
  EXPECT_EQ(csr.node_count(), 4u);
  EXPECT_EQ(csr.edge_count(), 3u);
  EXPECT_TRUE(csr.is_active(0));
  EXPECT_FALSE(csr.is_active(3));
  EXPECT_EQ(csr.out_targets(0).size(), 2u);
  EXPECT_EQ(csr.out_targets(2).size(), 0u);
  // The dropped edge to the inactive node still counts toward max_weight:
  // the default unreachable penalty must match the legacy Digraph scan.
  EXPECT_DOUBLE_EQ(csr.max_weight(), 9.0);
  EXPECT_EQ(csr.active_nodes(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(CsrGraphTest, InactiveSourceEdgesDropped) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_active(0, false);
  CsrGraph csr(g);
  EXPECT_EQ(csr.edge_count(), 0u);
  EXPECT_TRUE(csr.out_targets(0).empty());
}

TEST(CsrGraphTest, ValidationHoistedToBuild) {
  Digraph g(2);
  g.set_edge(0, 1, -1.0);
  CsrGraph csr;
  EXPECT_THROW(csr.rebuild(g), std::invalid_argument);
}

TEST(CsrGraphTest, RebuildReflectsNewSnapshot) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  CsrGraph csr(g);
  EXPECT_EQ(csr.edge_count(), 1u);
  g.set_edge(1, 2, 2.0);
  g.set_active(0, false);
  csr.rebuild(g);
  EXPECT_EQ(csr.edge_count(), 1u);  // 0's edge dropped, 1's added
  EXPECT_EQ(csr.out_targets(1)[0], 2);
}

// ---------------------------------------------------------------------------
// PathEngine vs. the legacy reference implementation

/// The legacy residual derivation (core::residual_of semantics): copy the
/// overlay minus `exclude`'s out-edges. The engine must match this bitwise.
Digraph residual_copy(const Digraph& overlay, NodeId exclude) {
  Digraph residual(overlay.node_count());
  for (std::size_t u = 0; u < overlay.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    residual.set_active(uid, overlay.is_active(uid));
    if (uid == exclude) continue;
    for (const auto& e : overlay.out_edges(uid)) {
      residual.set_edge(uid, e.to, e.weight);
    }
  }
  return residual;
}

Digraph random_overlay(util::Rng& rng, std::size_t n, std::size_t out_degree,
                       double inactive_fraction) {
  Digraph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (rng.chance(inactive_fraction)) g.set_active(static_cast<NodeId>(u), false);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 0; d < out_degree; ++d) {
      const auto v = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (v == static_cast<NodeId>(u)) continue;
      g.set_edge(static_cast<NodeId>(u), v, rng.uniform(0.1, 100.0));
    }
  }
  return g;
}

TEST(PathEngineTest, ShortestMatchesDijkstraOnHandBuiltGraph) {
  Digraph g(5);
  g.set_edge(0, 1, 2.0);
  g.set_edge(1, 2, 3.0);
  g.set_edge(0, 2, 10.0);
  g.set_edge(2, 3, 1.0);
  // node 4 is unreachable
  PathEngine engine(g);
  std::vector<double> row(5);
  engine.shortest_from(0, kNoExclude, row);
  const auto reference = dijkstra(g, 0).dist;
  for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(row[j], reference[j]) << j;
}

TEST(PathEngineTest, ExclusionMatchesResidualCopy) {
  // 0 -> 1 -> 2 chain plus 0 -> 2 shortcut; excluding 0 removes both of
  // 0's edges but keeps 1 -> 2 and 2 -> 0 intact.
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_edge(0, 2, 1.0);
  g.set_edge(1, 2, 5.0);
  g.set_edge(2, 0, 4.0);
  PathEngine engine(g);
  std::vector<double> row(3);
  engine.shortest_from(1, 0, row);
  const auto reference = dijkstra(residual_copy(g, 0), 1).dist;
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(row[j], reference[j]) << j;
  // Paths *through* the excluded node still work: 1 -> 2 -> 0.
  EXPECT_DOUBLE_EQ(row[0], 9.0);
}

TEST(PathEngineTest, InactiveSourceRowStaysUnreachable) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_active(2, false);
  PathEngine engine(g);
  std::vector<double> row(3, 0.0);
  engine.shortest_from(2, kNoExclude, row);
  for (double d : row) EXPECT_EQ(d, kUnreachable);
  engine.widest_from(2, kNoExclude, row);
  for (double d : row) EXPECT_EQ(d, 0.0);
}

TEST(PathEngineTest, WidestMatchesReferenceOnHandBuiltGraph) {
  Digraph g(4);
  g.set_edge(0, 1, 10.0);
  g.set_edge(1, 2, 8.0);
  g.set_edge(0, 2, 5.0);
  g.set_edge(2, 3, 12.0);
  PathEngine engine(g);
  std::vector<double> row(4);
  engine.widest_from(0, kNoExclude, row);
  const auto reference = widest_paths(g, 0).bottleneck;
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(row[j], reference[j]) << j;
  EXPECT_EQ(row[0], std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(row[2], 8.0);
}

TEST(PathEngineTest, RowSizeValidated) {
  Digraph g(3);
  PathEngine engine(g);
  std::vector<double> wrong(2);
  EXPECT_THROW(engine.shortest_from(0, kNoExclude, wrong),
               std::invalid_argument);
}

/// Randomized equivalence: across random graphs with churned-out nodes,
/// every residual view of the engine must be bit-identical to the legacy
/// residual-copy + all-pairs path (the acceptance bar for swapping the BR
/// hot loop onto the engine).
TEST(PathEngineEquivalenceTest, RandomGraphsAllExclusionsBitIdentical) {
  util::Rng rng(20260729);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.uniform_int(0, 18));
    const auto g = random_overlay(rng, n, 3, trial % 3 == 0 ? 0.25 : 0.0);
    PathEngine engine(g);
    for (NodeId exclude = -1; exclude < static_cast<NodeId>(n); ++exclude) {
      const auto residual =
          exclude == kNoExclude ? g : residual_copy(g, exclude);
      const auto ref_dist = all_pairs_shortest_paths(residual);
      const auto ref_bw = all_pairs_widest_paths(residual);
      const auto dist = engine.all_shortest(exclude);
      const auto bw = engine.all_widest(exclude);
      ASSERT_EQ(dist.rows(), n);
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(dist(u, j), ref_dist[u][j])
              << "trial " << trial << " exclude " << exclude << " (" << u
              << " -> " << j << ")";
          ASSERT_EQ(bw(u, j), ref_bw[u][j])
              << "trial " << trial << " exclude " << exclude << " (" << u
              << " -> " << j << ")";
        }
      }
    }
  }
}

/// Randomized incremental-update equivalence: after each single-row
/// mutation (the sequential-epoch pattern: one node re-announces its
/// links), the patched base trees must answer every residual query
/// bit-identically to a from-scratch legacy computation on the new graph.
TEST(PathEngineEquivalenceTest, IncrementalRowUpdatesStayBitIdentical) {
  util::Rng rng(0xE601u);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 10 + static_cast<std::size_t>(rng.uniform_int(0, 10));
    auto g = random_overlay(rng, n, 3, trial % 2 == 0 ? 0.2 : 0.0);
    PathEngine engine(g);
    engine.all_shortest(kNoExclude);  // force the shared base trees
    engine.all_widest(kNoExclude);
    for (int step = 0; step < 12; ++step) {
      // Mutate one node's out-edge row: re-price, drop, and add links.
      const auto u = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      g.clear_out_edges(u);
      const auto degree = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t d = 0; d < degree; ++d) {
        const auto v = static_cast<NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (v != u) g.set_edge(u, v, rng.uniform(0.1, 50.0));
      }
      engine.update_out_edges(u, g);
      // Every residual view must match the reference on the NEW graph.
      for (NodeId exclude = -1; exclude < static_cast<NodeId>(n); ++exclude) {
        const auto residual =
            exclude == kNoExclude ? g : residual_copy(g, exclude);
        const auto ref_dist = all_pairs_shortest_paths(residual);
        const auto ref_bw = all_pairs_widest_paths(residual);
        const auto dist = engine.all_shortest(exclude);
        const auto bw = engine.all_widest(exclude);
        for (std::size_t a = 0; a < n; ++a) {
          for (std::size_t b = 0; b < n; ++b) {
            ASSERT_EQ(dist(a, b), ref_dist[a][b])
                << "trial " << trial << " step " << step << " exclude "
                << exclude << " (" << a << " -> " << b << ")";
            ASSERT_EQ(bw(a, b), ref_bw[a][b])
                << "trial " << trial << " step " << step << " exclude "
                << exclude << " (" << a << " -> " << b << ")";
          }
        }
      }
    }
  }
}

TEST(PathEngineTest, UpdateWithActivityChangeFallsBackToRebuild) {
  util::Rng rng(3);
  auto g = random_overlay(rng, 12, 3, 0.0);
  PathEngine engine(g);
  engine.all_shortest(kNoExclude);
  g.set_active(4, false);  // membership change voids the one-row contract
  engine.update_out_edges(0, g);
  const auto dist = engine.all_shortest(kNoExclude);
  const auto ref = all_pairs_shortest_paths(g);
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = 0; b < 12; ++b) {
      ASSERT_EQ(dist(a, b), ref[a][b]) << a << " -> " << b;
    }
  }
}

/// The invalidation report consumed by the incremental dirty-set epochs:
/// after a successful one-row update, every source absent from
/// last_update_invalidated() must have bit-identical base rows in both
/// semirings — the list is allowed to be conservative (escape-relaxation
/// writes count as changed), never to miss a changed row.
TEST(PathEngineTest, UpdateReportsInvalidatedSourceRows) {
  util::Rng rng(0x11BAu);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 10 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    auto g = random_overlay(rng, n, 3, 0.0);
    PathEngine engine(g);
    for (int step = 0; step < 8; ++step) {
      const auto before_dist = engine.all_shortest(kNoExclude);
      const auto before_bw = engine.all_widest(kNoExclude);
      const auto u = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      g.clear_out_edges(u);
      const auto degree = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t d = 0; d < degree; ++d) {
        const auto v = static_cast<NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (v != u) g.set_edge(u, v, rng.uniform(0.1, 50.0));
      }
      engine.update_out_edges(u, g);
      ASSERT_FALSE(engine.last_update_rebuilt())
          << "trial " << trial << " step " << step;
      const auto invalidated = engine.last_update_invalidated();
      // Ascending and deduplicated: consumers index per-source caches.
      for (std::size_t i = 1; i < invalidated.size(); ++i) {
        ASSERT_LT(invalidated[i - 1], invalidated[i]);
      }
      const auto after_dist = engine.all_shortest(kNoExclude);
      const auto after_bw = engine.all_widest(kNoExclude);
      for (std::size_t src = 0; src < n; ++src) {
        const bool listed =
            std::find(invalidated.begin(), invalidated.end(),
                      static_cast<NodeId>(src)) != invalidated.end();
        if (listed) continue;
        for (std::size_t b = 0; b < n; ++b) {
          ASSERT_EQ(before_dist(src, b), after_dist(src, b))
              << "unlisted source " << src << " changed (shortest), trial "
              << trial << " step " << step;
          ASSERT_EQ(before_bw(src, b), after_bw(src, b))
              << "unlisted source " << src << " changed (widest), trial "
              << trial << " step " << step;
        }
      }
    }
  }
}

TEST(PathEngineTest, NoOpUpdateInvalidatesNothing) {
  util::Rng rng(21);
  auto g = random_overlay(rng, 12, 3, 0.0);
  PathEngine engine(g);
  engine.all_shortest(kNoExclude);
  engine.all_widest(kNoExclude);
  engine.update_out_edges(3, g);  // row unchanged: announce refresh
  EXPECT_FALSE(engine.last_update_rebuilt());
  EXPECT_TRUE(engine.last_update_invalidated().empty());
}

TEST(PathEngineTest, RebuildAndFallbackReportFullRefresh) {
  util::Rng rng(22);
  auto g = random_overlay(rng, 12, 3, 0.0);
  PathEngine engine(g);
  // Construction is a rebuild: every cached row is void.
  EXPECT_TRUE(engine.last_update_rebuilt());
  engine.all_shortest(kNoExclude);
  g.set_edge(0, 5, 1.0);
  engine.update_out_edges(0, g);
  EXPECT_FALSE(engine.last_update_rebuilt());
  g.set_active(4, false);  // voids the one-row contract
  engine.update_out_edges(0, g);
  EXPECT_TRUE(engine.last_update_rebuilt());
  EXPECT_TRUE(engine.last_update_invalidated().empty());
  g.set_active(4, true);
  engine.rebuild(g);
  EXPECT_TRUE(engine.last_update_rebuilt());
}

TEST(PathEngineEquivalenceTest, ParallelWorkersMatchSerial) {
  util::Rng rng(7);
  const auto g = random_overlay(rng, 40, 4, 0.1);
  PathEngine serial(g, 1);
  PathEngine parallel(g, 3);
  EXPECT_EQ(parallel.workers(), 3);
  for (NodeId exclude : {kNoExclude, NodeId{0}, NodeId{17}}) {
    const auto a = serial.all_shortest(exclude);
    const auto b = parallel.all_shortest(exclude);
    for (std::size_t u = 0; u < 40; ++u) {
      for (std::size_t j = 0; j < 40; ++j) {
        ASSERT_EQ(a(u, j), b(u, j)) << u << " -> " << j;
      }
    }
  }
}

TEST(PathEngineTest, AutoWorkersResolveToAtLeastOne) {
  PathEngine engine;
  engine.set_workers(0);
  EXPECT_GE(engine.workers(), 1);
  EXPECT_LE(engine.workers(), 4);
  EXPECT_THROW(engine.set_workers(-1), std::invalid_argument);
}

/// Const concurrent queries against a prepared engine: every worker owns a
/// QueryScratch and fans out over sources; rows must be bit-identical to
/// the single-threaded engine-owned-scratch path.
TEST(PathEngineConstQueryTest, ConcurrentScratchQueriesMatchSequential) {
  util::Rng rng(31);
  const auto g = random_overlay(rng, 30, 4, 0.1);
  const std::size_t n = 30;

  PathEngine reference(g);
  DistanceMatrix want;
  reference.all_shortest(5, want);

  PathEngine engine(g);
  engine.prepare_shortest();
  ASSERT_TRUE(engine.shortest_prepared());
  const PathEngine& const_engine = engine;

  DistanceMatrix got(n, n, kUnreachable);
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PathEngine::QueryScratch scratch;
      for (std::size_t src = t; src < n; src += kThreads) {
        const_engine.shortest_from(static_cast<NodeId>(src), 5, got.row(src),
                                   scratch);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(got(u, j), want(u, j)) << u << " -> " << j;
    }
  }
}

/// Without prepared base trees the const overloads fall back to a direct
/// SSSP — same bits, no mutation of the engine.
TEST(PathEngineConstQueryTest, UnpreparedConstQueryRunsDirectSssp) {
  util::Rng rng(32);
  const auto g = random_overlay(rng, 20, 3, 0.0);
  PathEngine engine(g);
  ASSERT_FALSE(engine.shortest_prepared());
  const PathEngine& const_engine = engine;
  PathEngine::QueryScratch scratch;

  std::vector<double> row(20);
  const_engine.shortest_from(3, 7, row, scratch);
  EXPECT_FALSE(engine.shortest_prepared());  // still untouched
  const auto reference = dijkstra(residual_copy(g, 7), 3).dist;
  for (std::size_t j = 0; j < 20; ++j) EXPECT_EQ(row[j], reference[j]) << j;

  const_engine.widest_from(3, 7, row, scratch);
  const auto ref_bw = widest_paths(residual_copy(g, 7), 3).bottleneck;
  for (std::size_t j = 0; j < 20; ++j) EXPECT_EQ(row[j], ref_bw[j]) << j;
}

/// One QueryScratch survives snapshot rebuilds and engine swaps: the
/// epoch-stamped marks can never produce a false descendant match.
TEST(PathEngineConstQueryTest, ScratchIsReusableAcrossSnapshotsAndEngines) {
  util::Rng rng(33);
  PathEngine::QueryScratch scratch;
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    const auto g = random_overlay(rng, n, 3, 0.1);
    PathEngine engine(g);
    engine.prepare_shortest();
    engine.prepare_widest();
    PathEngine legacy(g);
    DistanceMatrix want_d, want_b;
    legacy.all_shortest(2, want_d);
    legacy.all_widest(2, want_b);
    DistanceMatrix got_d, got_b;
    static_cast<const PathEngine&>(engine).all_shortest(2, got_d, scratch);
    static_cast<const PathEngine&>(engine).all_widest(2, got_b, scratch);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(got_d(u, j), want_d(u, j)) << trial << ": " << u << "," << j;
        ASSERT_EQ(got_b(u, j), want_b(u, j)) << trial << ": " << u << "," << j;
      }
    }
  }
}

TEST(PathEngineTest, RebuildTracksGraphMutations) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  PathEngine engine(g);
  std::vector<double> row(3);
  engine.shortest_from(0, kNoExclude, row);
  EXPECT_DOUBLE_EQ(row[2], 2.0);
  g.set_edge(0, 2, 0.5);
  engine.rebuild(g);
  engine.shortest_from(0, kNoExclude, row);
  EXPECT_DOUBLE_EQ(row[2], 0.5);
}

}  // namespace
}  // namespace egoist::graph
