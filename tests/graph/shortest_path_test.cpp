#include "graph/shortest_path.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace egoist::graph {
namespace {

// Small fixture graph:
//   0 ->1 (1), 0->2 (4), 1->2 (2), 2->3 (1), 1->3 (5)
Digraph diamond() {
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(0, 2, 4.0);
  g.set_edge(1, 2, 2.0);
  g.set_edge(2, 3, 1.0);
  g.set_edge(1, 3, 5.0);
  return g;
}

TEST(DijkstraTest, FindsShortestDistances) {
  const auto tree = dijkstra(diamond(), 0);
  EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 3.0);  // via 1
  EXPECT_DOUBLE_EQ(tree.dist[3], 4.0);  // 0-1-2-3
}

TEST(DijkstraTest, ExtractPathFollowsParents) {
  const auto tree = dijkstra(diamond(), 0);
  EXPECT_EQ(extract_path(tree, 0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(extract_path(tree, 0, 0), (std::vector<NodeId>{0}));
}

TEST(DijkstraTest, UnreachableIsInfinity) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_EQ(tree.dist[2], kUnreachable);
  EXPECT_TRUE(extract_path(tree, 0, 2).empty());
}

TEST(DijkstraTest, DirectionMatters) {
  Digraph g(2);
  g.set_edge(0, 1, 1.0);
  const auto from1 = dijkstra(g, 1);
  EXPECT_EQ(from1.dist[0], kUnreachable);
}

TEST(DijkstraTest, InactiveNodesAreSkipped) {
  auto g = diamond();
  g.set_active(1, false);
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 4.0);  // forced through direct 0->2
  EXPECT_DOUBLE_EQ(tree.dist[3], 5.0);
  EXPECT_EQ(tree.dist[1], kUnreachable);
}

TEST(DijkstraTest, InactiveSourceRejected) {
  auto g = diamond();
  g.set_active(0, false);
  EXPECT_THROW(dijkstra(g, 0), std::invalid_argument);
}

TEST(DijkstraTest, NegativeWeightRejected) {
  Digraph g(2);
  g.set_edge(0, 1, -1.0);
  EXPECT_THROW(dijkstra(g, 0), std::invalid_argument);
}

TEST(DijkstraTest, ZeroWeightEdgesAllowed) {
  Digraph g(3);
  g.set_edge(0, 1, 0.0);
  g.set_edge(1, 2, 0.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 0.0);
}

TEST(ApspTest, MatchesPerSourceDijkstra) {
  const auto g = diamond();
  const auto all = all_pairs_shortest_paths(g);
  for (NodeId u = 0; u < 4; ++u) {
    const auto tree = dijkstra(g, u);
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                       tree.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(ApspTest, InactiveRowIsUnreachable) {
  auto g = diamond();
  g.set_active(2, false);
  const auto all = all_pairs_shortest_paths(g);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(all[2][static_cast<std::size_t>(v)], kUnreachable);
  }
}

TEST(HopDistanceTest, CountsHopsNotWeights) {
  auto g = diamond();
  const auto hops = hop_distances(g, 0);
  EXPECT_EQ(hops[0], 0);
  EXPECT_EQ(hops[1], 1);
  EXPECT_EQ(hops[2], 1);  // direct heavy edge still 1 hop
  EXPECT_EQ(hops[3], 2);
}

TEST(HopDistanceTest, UnreachableIsMinusOne) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  EXPECT_EQ(hop_distances(g, 0)[2], -1);
}

// Property: on random graphs, Dijkstra distances satisfy the triangle
// inequality d(s,v) <= d(s,u) + w(u,v) for every edge (u,v).
class DijkstraRandomGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandomGraphTest, RelaxedEdgesSatisfyTriangleInequality) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 30;
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 0; j < 4; ++j) {
      const NodeId v = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      if (v != u) g.set_edge(u, v, rng.uniform(0.1, 10.0));
    }
  }
  const auto tree = dijkstra(g, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (tree.dist[static_cast<std::size_t>(u)] == kUnreachable) continue;
    for (const Edge& e : g.out_edges(u)) {
      EXPECT_LE(tree.dist[static_cast<std::size_t>(e.to)],
                tree.dist[static_cast<std::size_t>(u)] + e.weight + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomGraphTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace egoist::graph
