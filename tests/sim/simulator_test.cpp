#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace egoist::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(3.0, [&] { order.push_back(3); });
  sim.schedule_in(1.0, [&] { order.push_back(1); });
  sim.schedule_in(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, TiesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  sim.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(9.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(9.0);  // boundary events run
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.5, [&] { times.push_back(sim.now()); });
  });
  sim.run_until(10.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel reports false
  sim.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(999));
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  // Regression: cancelling an id that already ran used to report success
  // and permanently park the id in the cancelled set, skewing pending().
  Simulator sim;
  const EventId ran = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.run_until(1.0);
  EXPECT_FALSE(sim.cancel(ran));
  EXPECT_EQ(sim.pending(), 1u);  // only the t=2 event remains
  sim.run_until(3.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(SimulatorTest, PendingExcludesCancelledEventsImmediately) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const EventId id = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 1u);  // cancelled event no longer counts
  EXPECT_FALSE(sim.cancel(id));  // and double cancel cannot double-discount
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(5.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorTest, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(1.0, nullptr), std::invalid_argument);
}

TEST(SimulatorTest, RunForAdvancesRelativeToNow) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(5.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(30.0, [&] { times.push_back(sim.now()); });
  sim.run_for(20.0);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
  sim.run_for(10.0);  // boundary event at 30 runs
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
  EXPECT_EQ(times, (std::vector<double>{5.0, 30.0}));
}

TEST(SimulatorTest, RepeatedRunForLandsExactlyOnEpochBoundaries) {
  // The epoch-scheduling pattern of the overhead experiment: advancing by
  // the announce period R times must land the clock exactly on R periods,
  // with every periodic firing observed.
  Simulator sim;
  int fired = 0;
  PeriodicTask task(sim, 20.0, 20.0, [&](double) { ++fired; });
  for (int r = 0; r < 5; ++r) sim.run_for(20.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
  EXPECT_EQ(fired, 5);  // t = 20, 40, 60, 80, 100
}

TEST(SimulatorTest, RunForRejectsNegative) {
  Simulator sim;
  EXPECT_THROW(sim.run_for(-0.5), std::invalid_argument);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_in(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, ExecutedCountsOnlyRunEvents) {
  Simulator sim;
  sim.schedule_in(1.0, [] {});
  const EventId id = sim.schedule_in(2.0, [] {});
  sim.cancel(id);
  sim.run_until(5.0);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTask task(sim, 10.0, 5.0, [&](double now) { times.push_back(now); });
  sim.run_until(25.0);
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(PeriodicTaskTest, StopHaltsFutureFirings) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 0.0, 1.0, [&](double) { ++count; });
  sim.run_until(3.0);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(10.0);
  EXPECT_EQ(count, 4);  // t=0,1,2,3
}

TEST(PeriodicTaskTest, DestructionCancelsCleanly) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 0.0, 1.0, [&](double) { ++count; });
    sim.run_until(2.0);
  }
  sim.run_until(10.0);  // must not crash or fire the dead task
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, TaskCanStopItself) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 1.0, 1.0, [&](double) {
    if (++count == 2) task.stop();
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, JitterOffsetsEachOccurrenceWithoutDriftingTheGrid) {
  // jitter_fn shifts individual firings off their nominal slot; the slot
  // grid start + i * period itself must not accumulate the offsets.
  Simulator sim;
  std::vector<double> times;
  PeriodicTask task(
      sim, 10.0, 5.0, [&](double now) { times.push_back(now); },
      [](std::uint64_t occurrence) { return occurrence % 2 == 1 ? 0.4 : 0.0; });
  sim.run_until(26.0);
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.4, 20.0, 25.4}));
}

TEST(PeriodicTaskTest, JitterReceivesOccurrenceIndices) {
  Simulator sim;
  std::vector<std::uint64_t> indices;
  PeriodicTask task(
      sim, 0.0, 1.0, [](double) {},
      [&](std::uint64_t occurrence) {
        indices.push_back(occurrence);
        return 0.0;
      });
  sim.run_until(3.0);
  // Occurrence 0 arms at construction; each firing arms the next.
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(PeriodicTaskTest, NegativeJitterClampsToTheClock) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTask task(
      sim, 5.0, 5.0, [&](double now) { times.push_back(now); },
      [](std::uint64_t occurrence) { return occurrence == 0 ? -100.0 : 0.0; });
  sim.run_until(11.0);
  // Occurrence 0 (nominal 5) is pulled far into the past and clamps to the
  // clock (0); the grid is unaffected, so the next firings stay nominal.
  EXPECT_EQ(times, (std::vector<double>{0.0, 10.0}));
}

TEST(PeriodicTaskTest, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, 0.0, 0.0, [](double) {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTask(sim, 0.0, 1.0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::sim
