#include "churn/churn.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace egoist::churn {
namespace {

TEST(ChurnRateTest, HandComputedSequence) {
  // 4 nodes, all ON. Events: node 0 leaves (|U| 4 -> 3, denom 4),
  // node 1 leaves (3 -> 2, denom 3), node 0 rejoins (2 -> 3, denom 3).
  const std::vector<ChurnEvent> events{
      {1.0, 0, false}, {2.0, 1, false}, {3.0, 0, true}};
  const std::vector<bool> on{true, true, true, true};
  const double expected = (1.0 / 4 + 1.0 / 3 + 1.0 / 3) / 10.0;
  EXPECT_NEAR(churn_rate(events, on, 10.0), expected, 1e-12);
}

TEST(ChurnRateTest, RedundantEventsIgnored) {
  // Turning ON an already-ON node changes nothing.
  const std::vector<ChurnEvent> events{{1.0, 0, true}};
  const std::vector<bool> on{true, true};
  EXPECT_DOUBLE_EQ(churn_rate(events, on, 5.0), 0.0);
}

TEST(ChurnRateTest, EmptyTraceIsZero) {
  EXPECT_DOUBLE_EQ(churn_rate({}, {true, true}, 100.0), 0.0);
}

TEST(ChurnRateTest, Rejections) {
  EXPECT_THROW(churn_rate({}, {true}, 0.0), std::invalid_argument);
  EXPECT_THROW(churn_rate({{1.0, 5, true}}, {true}, 10.0), std::out_of_range);
}

TEST(ChurnTraceTest, EventsSortedAndInHorizon) {
  ChurnConfig config;
  config.mean_on_s = 100.0;
  config.mean_off_s = 50.0;
  const ChurnTrace trace(20, 1000.0, 7, config);
  double prev = 0.0;
  for (const auto& ev : trace.events()) {
    EXPECT_GE(ev.time, prev);
    EXPECT_LT(ev.time, 1000.0);
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, 20);
    prev = ev.time;
  }
  EXPECT_FALSE(trace.events().empty());
}

TEST(ChurnTraceTest, DeterministicForSeed) {
  const ChurnTrace a(10, 500.0, 3), b(10, 500.0, 3);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
}

TEST(ChurnTraceTest, EventsAlternatePerNode) {
  const ChurnTrace trace(5, 2000.0, 11);
  std::vector<bool> on = trace.initial_on();
  for (const auto& ev : trace.events()) {
    const auto idx = static_cast<std::size_t>(ev.node);
    EXPECT_NE(on[idx], ev.on) << "event must toggle state";
    on[idx] = ev.on;
  }
}

TEST(ChurnTraceTest, SmallerTimescaleMeansMoreChurn) {
  ChurnConfig slow;
  slow.timescale = 1.0;
  ChurnConfig fast = slow;
  fast.timescale = 0.1;
  const ChurnTrace a(30, 5000.0, 13, slow);
  const ChurnTrace b(30, 5000.0, 13, fast);
  EXPECT_GT(b.churn_rate(), a.churn_rate() * 3.0);
}

TEST(ChurnTraceTest, ChurnRateScalesRoughlyInversely) {
  // Rate ~ events/sec/node-ish; with mean ON 100 s and OFF 100 s (scaled),
  // a node toggles every ~100 s, so total rate ~ n / 100 / n = 0.01-ish
  // normalized. We only assert the order of magnitude.
  ChurnConfig config;
  config.mean_on_s = 100.0;
  config.mean_off_s = 100.0;
  const ChurnTrace trace(50, 20000.0, 17, config);
  EXPECT_GT(trace.churn_rate(), 0.001);
  EXPECT_LT(trace.churn_rate(), 0.1);
}

TEST(ChurnTraceTest, AvailabilityMatchesDutyCycle) {
  // ON:OFF = 300:100 scaled => availability ~ 0.75.
  ChurnConfig config;
  config.mean_on_s = 300.0;
  config.mean_off_s = 100.0;
  config.initial_on_fraction = 0.75;
  const ChurnTrace trace(100, 50000.0, 19, config);
  EXPECT_NEAR(trace.mean_availability(), 0.75, 0.1);
}

TEST(ChurnTraceTest, InitialOnFractionRespected) {
  ChurnConfig config;
  config.initial_on_fraction = 0.0;
  const ChurnTrace trace(50, 100.0, 21, config);
  EXPECT_EQ(std::count(trace.initial_on().begin(), trace.initial_on().end(), true), 0);
}

TEST(ChurnTraceTest, Rejections) {
  EXPECT_THROW(ChurnTrace(0, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(ChurnTrace(5, 0.0, 1), std::invalid_argument);
  ChurnConfig bad;
  bad.timescale = 0.0;
  EXPECT_THROW(ChurnTrace(5, 100.0, 1, bad), std::invalid_argument);
  bad = ChurnConfig{};
  bad.pareto_alpha = 1.0;
  EXPECT_THROW(ChurnTrace(5, 100.0, 1, bad), std::invalid_argument);
  bad = ChurnConfig{};
  bad.initial_on_fraction = 1.5;
  EXPECT_THROW(ChurnTrace(5, 100.0, 1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::churn
