#include "proto/link_state.hpp"

#include <gtest/gtest.h>

#include "graph/shortest_path.hpp"

namespace egoist::proto {
namespace {

constexpr double kPropDelay = 0.01;

LinkStateProtocol::PropagationFn constant_delay() {
  return [](NodeId, NodeId) { return kPropDelay; };
}

TEST(AnnouncementTest, WireSizeMatchesPaperFormula) {
  Announcement lsa;
  lsa.links = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  EXPECT_DOUBLE_EQ(lsa.size_bits(), 192.0 + 32.0 * 3);
  EXPECT_DOUBLE_EQ(Announcement{}.size_bits(), 192.0);
}

TEST(TopologyDbTest, FresherSeqWinsStaleLoses) {
  TopologyDb db;
  Announcement a{0, 2, {{1, 1.0}}};
  EXPECT_TRUE(db.update(a, 0.0));
  Announcement stale{0, 1, {{2, 9.0}}};
  EXPECT_FALSE(db.update(stale, 1.0));
  Announcement same{0, 2, {{2, 9.0}}};
  EXPECT_FALSE(db.update(same, 1.0));
  Announcement fresher{0, 3, {{2, 9.0}}};
  EXPECT_TRUE(db.update(fresher, 2.0));
  ASSERT_NE(db.lookup(0), nullptr);
  EXPECT_EQ(db.lookup(0)->links[0].neighbor, 2);
}

TEST(TopologyDbTest, PurgeDropsOldEntries) {
  TopologyDb db;
  db.update(Announcement{0, 1, {}}, 10.0);
  db.update(Announcement{1, 1, {}}, 20.0);
  EXPECT_EQ(db.purge_older_than(15.0), 1u);
  EXPECT_EQ(db.lookup(0), nullptr);
  EXPECT_NE(db.lookup(1), nullptr);
}

TEST(TopologyDbTest, BuildGraphReflectsAnnouncements) {
  TopologyDb db;
  db.update(Announcement{0, 1, {{1, 2.5}}}, 0.0);
  db.update(Announcement{1, 1, {{0, 1.5}}}, 0.0);
  const auto g = db.build_graph(3);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 1.5);
  EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(TopologyDbTest, BuildGraphSkipsMalformedEntries) {
  TopologyDb db;
  db.update(Announcement{0, 1, {{99, 1.0}, {0, 1.0}, {1, 3.0}}}, 0.0);
  const auto g = db.build_graph(3);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 3.0);
}

TEST(TopologyDbTest, PurgeBoundariesAndEmptyDb) {
  TopologyDb db;
  EXPECT_EQ(db.purge_older_than(100.0), 0u);  // empty database: no-op

  db.update(Announcement{0, 1, {}}, 10.0);
  db.update(Announcement{1, 1, {}}, 20.0);
  db.update(Announcement{2, 1, {}}, 30.0);
  // Aging is strict: an entry accepted exactly at the cutoff survives.
  EXPECT_EQ(db.purge_older_than(20.0), 1u);
  EXPECT_EQ(db.lookup(0), nullptr);
  EXPECT_NE(db.lookup(1), nullptr);
  EXPECT_EQ(db.size(), 2u);
  // A refresh (fresher seq) renews the acceptance time and dodges aging.
  db.update(Announcement{1, 2, {}}, 50.0);
  EXPECT_EQ(db.purge_older_than(40.0), 1u);  // node 2 ages out, 1 stays
  EXPECT_NE(db.lookup(1), nullptr);
  EXPECT_EQ(db.accepted_at(1), std::optional<double>(50.0));
  // Cutoff beyond everything empties the database.
  EXPECT_EQ(db.purge_older_than(1e9), 1u);
  EXPECT_EQ(db.size(), 0u);
}

TEST(TopologyDbTest, EraseRemovesOnlyTheNamedOrigin) {
  TopologyDb db;
  db.update(Announcement{0, 5, {{1, 1.0}}}, 0.0);
  db.update(Announcement{1, 3, {{0, 2.0}}}, 0.0);
  EXPECT_TRUE(db.erase(0));
  EXPECT_EQ(db.lookup(0), nullptr);
  EXPECT_EQ(db.accepted_at(0), std::nullopt);
  EXPECT_NE(db.lookup(1), nullptr);
  EXPECT_FALSE(db.erase(0));   // already gone
  EXPECT_FALSE(db.erase(42));  // never present
  EXPECT_EQ(db.size(), 1u);
  // A re-learned announcement from an erased origin is accepted afresh,
  // whatever its sequence number (the old state is really gone).
  EXPECT_TRUE(db.update(Announcement{0, 1, {{1, 9.0}}}, 5.0));
  EXPECT_DOUBLE_EQ(db.lookup(0)->links[0].cost, 9.0);
}

TEST(TopologyDbTest, BuildGraphWithMissingOriginsAndDanglingTargets) {
  TopologyDb db;
  // Node 1 never announced (missing origin) but is a link target; node 0's
  // announcement also carries a dangling target (id beyond node_count) and
  // an out-of-range origin sits in the database (origin 7 with
  // node_count 4).
  db.update(Announcement{0, 1, {{1, 2.0}, {9, 1.0}}}, 0.0);
  db.update(Announcement{2, 1, {{1, 4.0}, {3, 5.0}}}, 0.0);
  db.update(Announcement{7, 1, {{0, 1.0}}}, 0.0);
  const auto g = db.build_graph(4);
  // Missing origins still exist as link targets, with no out-edges.
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 3), 5.0);
  // Dangling targets and out-of-range origins contribute nothing.
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_FALSE(g.has_edge(0, 3));
  // Shrinking node_count turns previously valid links dangling too.
  const auto small = db.build_graph(2);
  EXPECT_EQ(small.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(small.edge_weight(0, 1), 2.0);
}

// Ring of n nodes; every node links to the next.
LinkStateProtocol make_ring(sim::Simulator& sim, std::size_t n) {
  LinkStateProtocol proto(sim, n, constant_delay());
  for (std::size_t u = 0; u < n; ++u) {
    proto.set_links(static_cast<NodeId>(u),
                    {{static_cast<NodeId>((u + 1) % n), 1.0}});
  }
  return proto;
}

TEST(LinkStateProtocolTest, FloodReachesAllNodesOnRing) {
  sim::Simulator sim;
  auto proto = make_ring(sim, 6);
  proto.originate(0);
  sim.run_until(1.0);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_NE(proto.database(v).lookup(0), nullptr) << "node " << v;
  }
}

TEST(LinkStateProtocolTest, FloodTerminates) {
  sim::Simulator sim;
  auto proto = make_ring(sim, 6);
  proto.originate(0);
  sim.run_until(1.0);
  // Each node forwards a fresh LSA at most once per transport peer (two on
  // a ring: successor + predecessor). No infinite circulation.
  EXPECT_LE(proto.messages_sent(), 12u);
  EXPECT_EQ(proto.messages_accepted(), 6u);  // each node accepts once
}

TEST(LinkStateProtocolTest, AllOriginateConvergesToCommonView) {
  sim::Simulator sim;
  auto proto = make_ring(sim, 8);
  for (NodeId v = 0; v < 8; ++v) proto.originate(v);
  sim.run_until(2.0);
  // Every node sees the full ring.
  for (NodeId viewer = 0; viewer < 8; ++viewer) {
    const auto g = proto.view(viewer);
    EXPECT_EQ(g.edge_count(), 8u);
    const auto tree = graph::dijkstra(g, viewer);
    for (NodeId dst = 0; dst < 8; ++dst) {
      EXPECT_NE(tree.dist[static_cast<std::size_t>(dst)], graph::kUnreachable);
    }
  }
}

TEST(LinkStateProtocolTest, BitsAccountedPerMessage) {
  sim::Simulator sim;
  auto proto = make_ring(sim, 4);
  proto.originate(0);
  sim.run_until(1.0);
  // Each message carries 192 + 32*1 bits.
  EXPECT_DOUBLE_EQ(proto.bits_sent(),
                   static_cast<double>(proto.messages_sent()) * (192.0 + 32.0));
}

TEST(LinkStateProtocolTest, DownNodeDropsButFloodRoutesAround) {
  sim::Simulator sim;
  auto proto = make_ring(sim, 6);
  proto.set_up(3, false);
  proto.originate(0);
  sim.run_until(1.0);
  // Transport connections are bidirectional, so the flood reaches 4 and 5
  // around the other side of the ring; only the down node misses it.
  EXPECT_NE(proto.database(1).lookup(0), nullptr);
  EXPECT_NE(proto.database(2).lookup(0), nullptr);
  EXPECT_EQ(proto.database(3).lookup(0), nullptr);  // down: dropped
  EXPECT_NE(proto.database(4).lookup(0), nullptr);
  EXPECT_NE(proto.database(5).lookup(0), nullptr);
}

TEST(LinkStateProtocolTest, FullyCutNodeLearnsNothing) {
  sim::Simulator sim;
  LinkStateProtocol proto(sim, 4, constant_delay());
  proto.set_links(0, {{1, 1.0}});
  proto.set_links(1, {{0, 1.0}});
  // Node 3 has no links in either direction.
  proto.originate(0);
  sim.run_until(1.0);
  EXPECT_EQ(proto.database(3).lookup(0), nullptr);
}

TEST(LinkStateProtocolTest, DownNodeDoesNotOriginate) {
  sim::Simulator sim;
  auto proto = make_ring(sim, 4);
  proto.set_up(0, false);
  proto.originate(0);
  sim.run_until(1.0);
  EXPECT_EQ(proto.messages_sent(), 0u);
}

TEST(LinkStateProtocolTest, RewiringPropagatesNewCosts) {
  sim::Simulator sim;
  auto proto = make_ring(sim, 4);
  for (NodeId v = 0; v < 4; ++v) proto.originate(v);
  sim.run_until(1.0);
  proto.set_links(0, {{2, 7.0}});  // 0 rewires from 1 to 2
  proto.originate(0);
  sim.run_until(2.0);
  for (NodeId viewer = 0; viewer < 4; ++viewer) {
    const auto g = proto.view(viewer);
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 7.0);
  }
}

TEST(LinkStateProtocolTest, PropagationDelayOrdersDelivery) {
  sim::Simulator sim;
  LinkStateProtocol proto(sim, 3, [](NodeId from, NodeId) {
    return from == 0 ? 1.0 : 0.1;  // slow first hop
  });
  proto.set_links(0, {{1, 1.0}});
  proto.set_links(1, {{2, 1.0}});
  proto.originate(0);
  sim.run_until(0.5);
  EXPECT_EQ(proto.database(1).lookup(0), nullptr);  // still in flight
  sim.run_until(2.0);
  EXPECT_NE(proto.database(1).lookup(0), nullptr);
  EXPECT_NE(proto.database(2).lookup(0), nullptr);
}

TEST(LinkStateProtocolTest, Rejections) {
  sim::Simulator sim;
  EXPECT_THROW(LinkStateProtocol(sim, 0, constant_delay()), std::invalid_argument);
  EXPECT_THROW(LinkStateProtocol(sim, 3, nullptr), std::invalid_argument);
  LinkStateProtocol proto(sim, 3, constant_delay());
  EXPECT_THROW(proto.set_links(0, {{0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(proto.set_links(0, {{9, 1.0}}), std::out_of_range);
  EXPECT_THROW(proto.originate(7), std::out_of_range);
}

}  // namespace
}  // namespace egoist::proto
