// Failure-injection tests for the protocol plane: node crashes mid-flood,
// stale databases, LSA aging, rejoin sequencing, and backbone splicing via
// heartbeats.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "proto/heartbeat.hpp"
#include "proto/link_state.hpp"

namespace egoist::proto {
namespace {

LinkStateProtocol::PropagationFn delay_10ms() {
  return [](NodeId, NodeId) { return 0.01; };
}

/// Bidirectional chain 0 <-> 1 <-> 2 <-> 3 <-> 4.
LinkStateProtocol make_chain(sim::Simulator& sim, std::size_t n) {
  LinkStateProtocol proto(sim, n, delay_10ms());
  for (std::size_t u = 0; u < n; ++u) {
    std::vector<LinkEntry> links;
    if (u > 0) links.push_back({static_cast<NodeId>(u - 1), 1.0});
    if (u + 1 < n) links.push_back({static_cast<NodeId>(u + 1), 1.0});
    proto.set_links(static_cast<NodeId>(u), std::move(links));
  }
  return proto;
}

TEST(FailureInjectionTest, CrashMidFloodDropsInFlightDelivery) {
  sim::Simulator sim;
  auto proto = make_chain(sim, 5);
  proto.originate(0);
  sim.run_until(0.015);  // LSA reached node 1, is in flight to node 2
  proto.set_up(2, false);  // node 2 crashes
  sim.run_until(1.0);
  EXPECT_NE(proto.database(1).lookup(0), nullptr);
  EXPECT_EQ(proto.database(2).lookup(0), nullptr);  // dropped at crash
  EXPECT_EQ(proto.database(3).lookup(0), nullptr);  // behind the crash
}

TEST(FailureInjectionTest, RecoveredNodeCatchesUpOnNextOrigination) {
  sim::Simulator sim;
  auto proto = make_chain(sim, 5);
  proto.set_up(2, false);
  proto.originate(0);
  sim.run_until(1.0);
  EXPECT_EQ(proto.database(4).lookup(0), nullptr);
  proto.set_up(2, true);
  proto.originate(0);  // next periodic announcement
  sim.run_until(2.0);
  EXPECT_NE(proto.database(2).lookup(0), nullptr);
  EXPECT_NE(proto.database(4).lookup(0), nullptr);
}

TEST(FailureInjectionTest, StaleDatabaseStillBuildsUsableGraph) {
  sim::Simulator sim;
  auto proto = make_chain(sim, 4);
  for (NodeId v = 0; v < 4; ++v) proto.originate(v);
  sim.run_until(1.0);
  // Node 3 dies; nobody re-announces. Every viewer's DB still names 3's
  // links (stale), and graph construction must not blow up.
  proto.set_up(3, false);
  const auto g = proto.view(0);
  EXPECT_TRUE(g.has_edge(3, 2));  // stale entry kept until aged out
}

TEST(FailureInjectionTest, AgingPurgesDeadOriginsOnly) {
  sim::Simulator sim;
  auto proto = make_chain(sim, 4);
  for (NodeId v = 0; v < 4; ++v) proto.originate(v);
  sim.run_until(1.0);
  proto.set_up(3, false);
  // Fresh announcements from the living keep their entries young.
  sim.run_until(30.0);
  for (NodeId v = 0; v < 3; ++v) proto.originate(v);
  sim.run_until(31.0);
  auto& db = proto.mutable_database(0);
  const std::size_t purged = db.purge_older_than(sim.now() - 5.0);
  EXPECT_EQ(purged, 1u);  // only node 3's stale LSA
  EXPECT_EQ(db.lookup(3), nullptr);
  EXPECT_NE(db.lookup(1), nullptr);
}

TEST(FailureInjectionTest, RejoinUsesFreshSequenceNumbers) {
  sim::Simulator sim;
  auto proto = make_chain(sim, 3);
  proto.originate(1);
  sim.run_until(1.0);
  const auto first_seq = proto.database(0).lookup(1)->seq;
  proto.set_up(1, false);
  proto.set_up(1, true);  // leave + rejoin
  proto.originate(1);
  sim.run_until(2.0);
  // The rejoined node's announcement must supersede its pre-crash one.
  EXPECT_GT(proto.database(0).lookup(1)->seq, first_seq);
}

TEST(FailureInjectionTest, OutOfOrderDeliveryKeepsFreshest) {
  TopologyDb db;
  // Seq 3 arrives first (fast path), then seq 2 straggles in.
  EXPECT_TRUE(db.update(Announcement{0, 3, {{1, 5.0}}}, 1.0));
  EXPECT_FALSE(db.update(Announcement{0, 2, {{2, 9.0}}}, 2.0));
  EXPECT_EQ(db.lookup(0)->links[0].neighbor, 1);
}

TEST(FailureInjectionTest, HeartbeatSplicesBackboneAfterDeath) {
  // Backbone ring 0 -> 1 -> 2 -> 3 -> 0; when 2 dies the monitor at node 1
  // re-wires 1 -> 3 (the splice of §3.3).
  sim::Simulator sim;
  graph::Digraph ring(4);
  for (NodeId u = 0; u < 4; ++u) ring.set_edge(u, (u + 1) % 4, 1.0);
  std::set<NodeId> alive{0, 1, 2, 3};
  HeartbeatMonitor monitor(
      sim, 0.5, 2, [&](NodeId peer) { return alive.count(peer) > 0; },
      [&](NodeId dead) {
        // Splice: predecessor of `dead` links to its successor.
        for (NodeId u = 0; u < 4; ++u) {
          if (ring.has_edge(u, dead)) {
            ring.remove_edge(u, dead);
            NodeId next = (dead + 1) % 4;
            while (!alive.count(next)) next = (next + 1) % 4;
            if (next != u) ring.set_edge(u, next, 1.0);
          }
        }
        ring.set_active(dead, false);
      });
  monitor.watch(2);
  alive.erase(2);
  sim.run_until(5.0);
  EXPECT_FALSE(ring.is_active(2));
  EXPECT_TRUE(ring.has_edge(1, 3));
  EXPECT_TRUE(graph::is_strongly_connected(ring));
}

}  // namespace
}  // namespace egoist::proto
