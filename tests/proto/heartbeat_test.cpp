#include "proto/heartbeat.hpp"

#include <gtest/gtest.h>

#include <set>

namespace egoist::proto {
namespace {

struct Fixture {
  sim::Simulator sim;
  std::set<graph::NodeId> alive{1, 2, 3};
  std::vector<graph::NodeId> failures;

  HeartbeatMonitor make(double interval = 1.0, int threshold = 3) {
    return HeartbeatMonitor(
        sim, interval, threshold,
        [this](graph::NodeId peer) { return alive.count(peer) > 0; },
        [this](graph::NodeId peer) { failures.push_back(peer); });
  }
};

TEST(HeartbeatTest, HealthyPeersNeverFail) {
  Fixture f;
  auto monitor = f.make();
  monitor.watch(1);
  monitor.watch(2);
  f.sim.run_until(100.0);
  EXPECT_TRUE(f.failures.empty());
  EXPECT_EQ(monitor.watched_count(), 2u);
}

TEST(HeartbeatTest, DeadPeerDetectedAfterThresholdMisses) {
  Fixture f;
  auto monitor = f.make(1.0, 3);
  monitor.watch(1);
  f.sim.run_until(5.0);
  EXPECT_TRUE(f.failures.empty());
  f.alive.erase(1);  // dies at t=5
  f.sim.run_until(7.9);  // two missed probes (t=6, 7): not yet declared
  EXPECT_TRUE(f.failures.empty());
  f.sim.run_until(8.1);  // third miss at t=8
  ASSERT_EQ(f.failures.size(), 1u);
  EXPECT_EQ(f.failures[0], 1);
  EXPECT_EQ(monitor.watched_count(), 0u);  // auto-unwatched
}

TEST(HeartbeatTest, RecoveryResetsMissCounter) {
  Fixture f;
  auto monitor = f.make(1.0, 3);
  monitor.watch(2);
  f.alive.erase(2);
  f.sim.run_until(2.5);  // two misses
  f.alive.insert(2);     // comes back
  f.sim.run_until(3.5);  // probe succeeds, counter resets
  f.alive.erase(2);
  f.sim.run_until(5.9);  // two more misses — still below threshold
  EXPECT_TRUE(f.failures.empty());
}

TEST(HeartbeatTest, UnwatchStopsDetection) {
  Fixture f;
  auto monitor = f.make(1.0, 2);
  monitor.watch(3);
  f.alive.erase(3);
  monitor.unwatch(3);
  f.sim.run_until(10.0);
  EXPECT_TRUE(f.failures.empty());
}

TEST(HeartbeatTest, DetectionTimeIsIntervalTimesThreshold) {
  Fixture f;
  auto monitor = f.make(0.5, 4);
  EXPECT_DOUBLE_EQ(monitor.detection_time(), 2.0);
}

TEST(HeartbeatTest, ProbesAccumulate) {
  Fixture f;
  auto monitor = f.make(1.0, 3);
  monitor.watch(1);
  monitor.watch(2);
  f.sim.run_until(10.0);
  EXPECT_EQ(monitor.probes_sent(), 20u);  // 2 peers x 10 ticks
}

TEST(HeartbeatTest, FailureCallbackMayRewatch) {
  Fixture f;
  sim::Simulator& sim = f.sim;
  std::vector<graph::NodeId> failures;
  HeartbeatMonitor monitor(
      sim, 1.0, 1, [&f](graph::NodeId peer) { return f.alive.count(peer) > 0; },
      [&](graph::NodeId peer) {
        failures.push_back(peer);
        // Splice the backbone: watch the next node around the ring.
        // (Exercise mutation inside the callback.)
      });
  monitor.watch(9);
  f.sim.run_until(3.0);
  EXPECT_EQ(failures.size(), 1u);
}

TEST(HeartbeatTest, Rejections) {
  sim::Simulator sim;
  auto alive = [](graph::NodeId) { return true; };
  auto fail = [](graph::NodeId) {};
  EXPECT_THROW(HeartbeatMonitor(sim, 0.0, 1, alive, fail), std::invalid_argument);
  EXPECT_THROW(HeartbeatMonitor(sim, 1.0, 0, alive, fail), std::invalid_argument);
  EXPECT_THROW(HeartbeatMonitor(sim, 1.0, 1, nullptr, fail), std::invalid_argument);
  EXPECT_THROW(HeartbeatMonitor(sim, 1.0, 1, alive, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::proto
