#include "coord/vivaldi.hpp"

#include <gtest/gtest.h>

#include "net/delay_space.hpp"

namespace egoist::coord {
namespace {

TEST(CoordinateTest, DistanceIsSymmetricAndIncludesHeights) {
  Coordinate a, b;
  a.position = {0.0, 0.0, 0.0};
  b.position = {3.0, 4.0, 0.0};
  a.height = 1.0;
  b.height = 2.0;
  EXPECT_DOUBLE_EQ(a.distance_to(b), 5.0 + 3.0);
  EXPECT_DOUBLE_EQ(a.distance_to(b), b.distance_to(a));
}

TEST(VivaldiTest, ErrorDropsWithConvergence) {
  const auto d = net::make_planetlab_like(40, 5);
  VivaldiSystem vivaldi(d, 7);
  const double initial = vivaldi.median_relative_error();
  vivaldi.converge(200);
  const double converged = vivaldi.median_relative_error();
  EXPECT_LT(converged, initial);
  EXPECT_LT(converged, 0.35);  // deployed Vivaldi reaches ~10-25% median error
}

TEST(VivaldiTest, EstimatesAreSymmetric) {
  const auto d = net::make_planetlab_like(20, 9);
  VivaldiSystem vivaldi(d, 11);
  vivaldi.converge(100);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(vivaldi.estimate_one_way(i, j),
                       vivaldi.estimate_one_way(j, i));
    }
  }
}

TEST(VivaldiTest, EstimatesCorrelateWithTrueDelays) {
  const auto d = net::make_planetlab_like(40, 13);
  VivaldiSystem vivaldi(d, 15);
  vivaldi.converge(300);
  // Rank preservation in aggregate: mean estimate of the 10 farthest pairs
  // exceeds the mean estimate of the 10 closest pairs.
  std::vector<std::tuple<double, int, int>> pairs;
  for (int i = 0; i < 40; ++i) {
    for (int j = i + 1; j < 40; ++j) pairs.emplace_back(d.rtt(i, j), i, j);
  }
  std::sort(pairs.begin(), pairs.end());
  double near = 0.0, far = 0.0;
  for (int r = 0; r < 10; ++r) {
    near += vivaldi.estimate_one_way(std::get<1>(pairs[static_cast<std::size_t>(r)]),
                                     std::get<2>(pairs[static_cast<std::size_t>(r)]));
    const auto& p = pairs[pairs.size() - 1 - static_cast<std::size_t>(r)];
    far += vivaldi.estimate_one_way(std::get<1>(p), std::get<2>(p));
  }
  EXPECT_GT(far, near);
}

TEST(VivaldiTest, HeightsStayPositive) {
  const auto d = net::make_planetlab_like(20, 17);
  VivaldiSystem vivaldi(d, 19);
  vivaldi.converge(100);
  for (int v = 0; v < 20; ++v) EXPECT_GE(vivaldi.coordinate(v).height, 0.1);
}

TEST(VivaldiTest, DeterministicForSeed) {
  const auto d = net::make_planetlab_like(15, 21);
  VivaldiSystem a(d, 23), b(d, 23);
  a.converge(50);
  b.converge(50);
  EXPECT_DOUBLE_EQ(a.estimate_one_way(0, 1), b.estimate_one_way(0, 1));
}

TEST(VivaldiTest, LessAccurateThanPing) {
  // The design premise of Fig 1 top-right: coordinate estimates carry more
  // error than direct ping measurement (which is near-exact).
  const auto d = net::make_planetlab_like(30, 25);
  VivaldiSystem vivaldi(d, 27);
  vivaldi.converge(300);
  double worst = 0.0;
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) {
      if (i == j) continue;
      const double err =
          std::abs(vivaldi.estimate_one_way(i, j) - d.rtt(i, j) / 2.0) /
          (d.rtt(i, j) / 2.0);
      worst = std::max(worst, err);
    }
  }
  EXPECT_GT(worst, 0.10);  // some pairs are badly embedded — as in practice
}

TEST(VivaldiTest, Rejections) {
  const auto d = net::make_planetlab_like(5, 1);
  VivaldiSystem vivaldi(d, 1);
  EXPECT_THROW(vivaldi.estimate_one_way(0, 9), std::out_of_range);
  EXPECT_THROW(vivaldi.coordinate(-1), std::out_of_range);
  const std::vector<std::vector<double>> single{{0.0}};
  EXPECT_THROW(VivaldiSystem(net::DelaySpace(single), 1), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::coord
