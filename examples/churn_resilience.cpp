// Churn resilience: HybridBR's donated connectivity backbone (§3.3, §4.4).
//
//   $ ./build/examples/churn_resilience [--n=40] [--k=5] [--churn=0.02]
//
// Deploys BR and HybridBR side by side on one OverlayHost under an
// aggressive ON/OFF churn process (the host's staggered mode: one node
// re-evaluates per T/n seconds, churn events applied in time order) and
// prints each overlay's efficiency over time from epoch-end subscriptions
// — watch HybridBR's donated cycle links keep it connected through
// membership storms that partition plain BR.
#include <iostream>
#include <vector>

#include "churn/churn.hpp"
#include "host/overlay_host.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;

  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 40));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 5));
  const double churn_target = flags.get_double("churn", 0.02);
  const int epochs = flags.get_int("epochs", 20);
  const auto seed = flags.get_seed("seed", 17);
  flags.finish(
      "churn_resilience: run each policy under ON/OFF churn and compare "
      "node efficiency (paper section 4.4)");

  // ON/OFF schedule calibrated so the measured churn rate lands near the
  // requested target (see scenarios/fig2_churn.scn for the calibration).
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 2.0 / churn_target;
  churn_config.mean_off_s = churn_config.mean_on_s / 3.0;
  churn_config.initial_on_fraction = 0.75;
  const churn::ChurnTrace trace(n, epochs * 60.0, seed ^ 0xCCu, churn_config);

  std::cout << "Churn resilience demo: n=" << n << ", k=" << k
            << ", measured churn rate "
            << util::Table::format(trace.churn_rate(), 4) << " (events/s/node)\n\n";

  host::OverlayHost host(n, seed);
  auto deploy = [&](overlay::Policy policy) {
    return host.deploy(host::OverlaySpec()
                           .policy(policy)
                           .k(k)
                           .seed(seed)
                           .donated_links(2)
                           .epoch_period(60.0)
                           .staggered(seed ^ 0x0Du)
                           .churn(trace));
  };
  const auto br = deploy(overlay::Policy::kBestResponse);
  const auto hybrid = deploy(overlay::Policy::kHybridBR);

  // Per-epoch efficiency series, collected as the host drives both
  // overlays through the shared event loop.
  auto mean_efficiency = [&](host::OverlayHandle handle) {
    const auto snapshot = host.snapshot(handle);
    if (snapshot.online_count() < 2) return 0.0;
    return util::Summary::of(snapshot.node_efficiencies()).mean;
  };
  util::Table table({"minute", "online", "BR efficiency", "HybridBR efficiency"});
  std::vector<double> br_series;
  std::vector<std::size_t> online_series;
  const auto sub_br = host.on_epoch_end(br, [&](const host::EpochEvent& event) {
    online_series.push_back(event.online_count);
    br_series.push_back(mean_efficiency(br));
  });
  // HybridBR's epoch ends after BR's at the same timestamps (deployment
  // order), so both series are complete when its subscription fires.
  const auto sub_hybrid =
      host.on_epoch_end(hybrid, [&](const host::EpochEvent& event) {
        table.add_row({std::to_string(event.epoch),
                       std::to_string(online_series.back()),
                       util::Table::format(br_series.back(), 4),
                       util::Table::format(mean_efficiency(hybrid), 4)});
      });

  host.run_epochs(epochs);
  host.unsubscribe(sub_br);
  host.unsubscribe(sub_hybrid);

  table.write_ascii(std::cout);
  std::cout << "\nHybridBR donates 2 of its " << k
            << " links to a heartbeat-monitored backbone cycle; under heavy\n"
               "churn those redundant routes keep efficiency up while plain "
               "BR waits for\nits next wiring epoch to heal.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
