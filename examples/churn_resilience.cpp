// Churn resilience: HybridBR's donated connectivity backbone (§3.3, §4.4).
//
//   $ ./build/examples/churn_resilience [--n=40] [--k=5] [--churn=0.02]
//
// Runs BR and HybridBR side by side under an aggressive ON/OFF churn
// process (staggered re-wiring, one node per T/n seconds) and prints each
// overlay's efficiency over time — watch HybridBR's donated cycle links
// keep it connected through membership storms that partition plain BR.
#include <iostream>

#include "churn/churn.hpp"
#include "overlay/network.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

double mean_efficiency(const egoist::overlay::EgoistNetwork& net) {
  if (net.online_count() < 2) return 0.0;
  return egoist::util::Summary::of(net.node_efficiencies()).mean;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace egoist;

  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 40));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 5));
  const double churn_target = flags.get_double("churn", 0.02);
  const int epochs = flags.get_int("epochs", 20);
  const auto seed = flags.get_seed("seed", 17);
  flags.finish(
      "churn_resilience: run each policy under ON/OFF churn and compare "
      "node efficiency (paper section 4.4)");

  // ON/OFF schedule calibrated so the measured churn rate lands near the
  // requested target (see bench/fig2_churn.cpp for the calibration).
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = 2.0 / churn_target;
  churn_config.mean_off_s = churn_config.mean_on_s / 3.0;
  churn_config.initial_on_fraction = 0.75;
  const churn::ChurnTrace trace(n, epochs * 60.0, seed ^ 0xCCu, churn_config);

  std::cout << "Churn resilience demo: n=" << n << ", k=" << k
            << ", measured churn rate "
            << util::Table::format(trace.churn_rate(), 4) << " (events/s/node)\n\n";

  overlay::Environment br_env(n, seed), hybrid_env(n, seed);
  overlay::OverlayConfig br_config;
  br_config.policy = overlay::Policy::kBestResponse;
  br_config.k = k;
  br_config.seed = seed;
  auto hybrid_config = br_config;
  hybrid_config.policy = overlay::Policy::kHybridBR;
  hybrid_config.donated_links = 2;

  overlay::EgoistNetwork br(br_env, br_config);
  overlay::EgoistNetwork hybrid(hybrid_env, hybrid_config);
  for (std::size_t v = 0; v < n; ++v) {
    if (!trace.initial_on()[v]) {
      br.set_online(static_cast<int>(v), false);
      hybrid.set_online(static_cast<int>(v), false);
    }
  }

  util::Table table({"minute", "online", "BR efficiency", "HybridBR efficiency"});
  std::size_t next = 0;
  const auto& events = trace.events();
  const double slot = 60.0 / static_cast<double>(n);
  util::Rng order_rng(seed ^ 0x0Du);
  for (int e = 0; e < epochs; ++e) {
    auto order = br.online_nodes();
    order_rng.shuffle(order);
    std::size_t turn = 0;
    for (std::size_t s = 0; s < n; ++s) {
      const double t = e * 60.0 + (s + 1) * slot;
      while (next < events.size() && events[next].time <= t) {
        br.set_online(events[next].node, events[next].on);
        hybrid.set_online(events[next].node, events[next].on);
        ++next;
      }
      br_env.advance(slot);
      hybrid_env.advance(slot);
      if (turn < order.size()) {
        if (br.is_online(order[turn])) br.run_node(order[turn]);
        if (hybrid.is_online(order[turn])) hybrid.run_node(order[turn]);
        ++turn;
      }
    }
    table.add_row({std::to_string(e + 1), std::to_string(br.online_count()),
                   util::Table::format(mean_efficiency(br), 4),
                   util::Table::format(mean_efficiency(hybrid), 4)});
  }
  table.write_ascii(std::cout);
  std::cout << "\nHybridBR donates 2 of its " << k
            << " links to a heartbeat-monitored backbone cycle; under heavy\n"
               "churn those redundant routes keep efficiency up while plain "
               "BR waits for\nits next wiring epoch to heal.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
