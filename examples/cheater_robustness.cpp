// Free-rider robustness (§3.4, §4.5): nodes that announce inflated link
// costs to discourage others from routing through them.
//
//   $ ./build/examples/cheater_robustness [--n=40] [--k=3] [--factor=2.0]
//
// Deploys an honest overlay and a matched overlay where a quarter of the
// nodes lie (announce costs x factor), then compares realized routing
// costs for liars and honest nodes. The combinatorial structure of BR
// makes it hard for a liar to profit — costs barely move, with no audit
// machinery at all.
#include <algorithm>
#include <iostream>

#include "host/overlay_host.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;

  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 40));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 3));
  const double factor = flags.get_double("factor", 2.0);
  const int epochs = flags.get_int("epochs", 12);
  const auto seed = flags.get_seed("seed", 23);
  flags.finish(
      "cheater_robustness: measure how free riders that understate their "
      "cost distort the overlays each policy builds (paper section 3.4)");

  std::vector<int> liars;
  for (std::size_t c = 0; c < n / 4; ++c) liars.push_back(static_cast<int>(4 * c));

  // Honest and lying overlays run concurrently on one host; each sees the
  // same substrate realization through its own measurement plane, so the
  // cost ratio isolates exactly what the lie changed.
  host::OverlayHost host(n, seed);
  auto deploy = [&](bool lie) {
    host::OverlaySpec spec;
    spec.policy(overlay::Policy::kBestResponse).k(k).seed(seed);
    if (lie) spec.cheaters(liars, factor);
    return host.deploy(spec);
  };
  const auto honest_overlay = deploy(false);
  const auto lying_overlay = deploy(true);
  host.run_epochs(epochs);

  const auto honest = host.snapshot(honest_overlay).node_costs();
  const auto cheated = host.snapshot(lying_overlay).node_costs();

  util::OnlineStats liar_honest, liar_cheated, other_honest, other_cheated;
  for (std::size_t v = 0; v < n; ++v) {
    const bool is_liar =
        std::find(liars.begin(), liars.end(), static_cast<int>(v)) != liars.end();
    (is_liar ? liar_honest : other_honest).add(honest[v]);
    (is_liar ? liar_cheated : other_cheated).add(cheated[v]);
  }

  std::cout << "Free-rider robustness: " << liars.size() << " of " << n
            << " nodes announce their link costs x"
            << util::Table::format(factor, 1) << "\n\n";
  util::Table table({"group", "honest run (ms)", "lying run (ms)", "ratio"});
  table.add_row({"liars", util::Table::format(liar_honest.mean(), 1),
                 util::Table::format(liar_cheated.mean(), 1),
                 util::Table::format(liar_cheated.mean() / liar_honest.mean(), 3)});
  table.add_row({"honest nodes", util::Table::format(other_honest.mean(), 1),
                 util::Table::format(other_cheated.mean(), 1),
                 util::Table::format(other_cheated.mean() / other_honest.mean(), 3)});
  table.write_ascii(std::cout);
  std::cout << "\nA ratio near 1.0 means the lie bought the free riders "
               "nothing — and cost\nthe honest nodes almost nothing (§4.5).\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
