// Multipath file transfer through EGOIST first-hop neighbors (§6.1).
//
//   $ ./build/examples/multipath_transfer [--n=40] [--k=5]
//
// Builds a bandwidth-metric BR overlay, then shows — for a sample
// source/target pair — how redirecting parallel sessions through overlay
// neighbors that exit via different AS peering points multiplies the
// end-to-end rate compared to the single rate-limited IP path.
#include <iostream>

#include "apps/multipath.hpp"
#include "host/overlay_host.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;

  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 40));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 5));
  const auto seed = flags.get_seed("seed", 11);
  const int src = flags.get_int("src", 0);
  const int dst = flags.get_int("dst", static_cast<int>(n) - 1);
  flags.finish(
      "multipath_transfer: compare single-path vs multipath transfer "
      "bandwidth between two overlay nodes (paper section 5)");

  host::OverlayHost host(n, seed);
  const auto overlay = host.deploy(host::OverlaySpec()
                                       .policy(overlay::Policy::kBestResponse)
                                       .metric(overlay::Metric::kBandwidth)
                                       .k(k)
                                       .seed(seed));
  host.run_epochs(overlay, 10);

  const net::PeeringModel peering(n, seed ^ 0xA5u, 2, 4, 2.0);
  const auto snapshot = host.snapshot(overlay);
  const auto& overlay_bw = snapshot.true_bandwidth_graph();
  const auto& bw = host.environment(overlay).bandwidth();

  const double ip = apps::ip_path_rate(bw, peering, src, dst);
  const auto mp = apps::parallel_transfer(overlay_bw, bw, peering, src, dst);
  const double bound = apps::maxflow_rate(overlay_bw, peering, src, dst);

  std::cout << "Multipath transfer " << src << " -> " << dst << " (n=" << n
            << ", k=" << k << ")\n\n";
  std::cout << "Source AS is multihomed to " << peering.providers(src)
            << " peering points; each session is rate-limited at its exit.\n\n";

  util::Table table({"session via", "egress point", "rate (Mbps)"});
  for (std::size_t s = 0; s < mp.first_hops.size(); ++s) {
    table.add_row({std::to_string(mp.first_hops[s]),
                   std::to_string(peering.egress_point(src, mp.first_hops[s])),
                   util::Table::format(mp.session_rates[s], 2)});
  }
  table.write_ascii(std::cout);

  std::cout << "\nsingle IP-path session: " << util::Table::format(ip, 2)
            << " Mbps\n";
  std::cout << "parallel via overlay:   " << util::Table::format(mp.total_rate, 2)
            << " Mbps (" << mp.distinct_egress_points << " egress points, gain "
            << util::Table::format(mp.total_rate / ip, 2) << "x)\n";
  std::cout << "max-flow upper bound:   " << util::Table::format(bound, 2)
            << " Mbps\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
