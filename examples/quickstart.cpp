// Quickstart: stand up an EGOIST overlay and watch selfish neighbor
// selection beat the common heuristics.
//
//   $ ./build/examples/quickstart [--n=30] [--k=3] [--epochs=15]
//
// The example builds a PlanetLab-like substrate, deploys four overlays on
// it (Best-Response, k-Random, k-Regular, k-Closest), runs a few wiring
// epochs, and prints each overlay's mean routing delay.
#include <iostream>

#include "overlay/network.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;

  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 30));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 3));
  const int epochs = flags.get_int("epochs", 15);
  const auto seed = flags.get_seed("seed", 7);
  flags.finish(
      "quickstart: deploy BR/k-Random/k-Regular/k-Closest overlays on a "
      "shared substrate and compare mean routing delay after a few epochs");

  std::cout << "EGOIST quickstart: n=" << n << " nodes, k=" << k
            << " neighbors each, " << epochs << " one-minute epochs\n\n";

  util::Table table({"policy", "mean delay (ms)", "ci95", "re-wirings"});
  for (const auto policy :
       {overlay::Policy::kBestResponse, overlay::Policy::kRandom,
        overlay::Policy::kRegular, overlay::Policy::kClosest}) {
    // Each policy gets an identically seeded substrate: a fair, concurrent
    // comparison exactly like the paper's parallel PlanetLab agents.
    overlay::Environment env(n, seed);

    overlay::OverlayConfig config;
    config.policy = policy;
    config.k = k;
    config.metric = overlay::Metric::kDelayPing;
    config.seed = seed;
    overlay::EgoistNetwork net(env, config);

    for (int e = 0; e < epochs; ++e) {
      env.advance(60.0);  // substrate drifts between epochs
      net.run_epoch();    // every node re-evaluates its wiring
    }

    const auto costs = util::Summary::of(net.node_costs());
    table.add_row({overlay::to_string(policy),
                   util::Table::format(costs.mean, 1),
                   util::Table::format(costs.ci95, 1),
                   std::to_string(net.total_rewirings())});
  }
  table.write_ascii(std::cout);
  std::cout << "\nBest-Response buys each node (and the overlay as a whole) "
               "shorter routes\nwith the same per-node link budget k.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
