// Quickstart: stand up an EGOIST deployment and watch selfish neighbor
// selection beat the common heuristics.
//
//   $ ./build/examples/quickstart [--n=30] [--k=3] [--epochs=15]
//
// The example builds one OverlayHost (a PlanetLab-like substrate plus a
// virtual clock), deploys four overlays on it (Best-Response, k-Random,
// k-Regular, k-Closest) — each a cheap handle with its own measurement
// plane, all seeing identical network conditions — runs a few wiring
// epochs through the event loop, and prints each overlay's mean routing
// delay from an immutable snapshot.
#include <iostream>

#include "host/overlay_host.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;

  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 30));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 3));
  const int epochs = flags.get_int("epochs", 15);
  const auto seed = flags.get_seed("seed", 7);
  flags.finish(
      "quickstart: deploy BR/k-Random/k-Regular/k-Closest overlays on a "
      "shared substrate and compare mean routing delay after a few epochs");

  std::cout << "EGOIST quickstart: n=" << n << " nodes, k=" << k
            << " neighbors each, " << epochs << " one-minute epochs\n\n";

  // One host, four concurrent overlays: a fair comparison exactly like the
  // paper's parallel PlanetLab agents.
  host::OverlayHost host(n, seed);

  const std::vector<overlay::Policy> policies{
      overlay::Policy::kBestResponse, overlay::Policy::kRandom,
      overlay::Policy::kRegular, overlay::Policy::kClosest};
  std::vector<host::OverlayHandle> handles;
  for (const auto policy : policies) {
    handles.push_back(host.deploy(host::OverlaySpec()
                                      .policy(policy)
                                      .metric(overlay::Metric::kDelayPing)
                                      .k(k)
                                      .seed(seed)
                                      .epoch_period(60.0)));
  }

  host.run_epochs(epochs);  // every node re-evaluates once per epoch

  util::Table table({"policy", "mean delay (ms)", "ci95", "re-wirings"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto snapshot = host.snapshot(handles[i]);
    const auto costs = util::Summary::of(snapshot.node_costs());
    table.add_row({overlay::to_string(policies[i]),
                   util::Table::format(costs.mean, 1),
                   util::Table::format(costs.ci95, 1),
                   std::to_string(snapshot.total_rewirings())});
  }
  table.write_ascii(std::cout);
  std::cout << "\nBest-Response buys each node (and the overlay as a whole) "
               "shorter routes\nwith the same per-node link budget k.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
