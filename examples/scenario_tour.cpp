// Two acts touring the library's programmatic faces.
//
// Act 1 — the scenario driver (the programmatic face of egoist_sweep):
// everything the CLI does is three calls — build a ScenarioSpec (here in
// code; normally parsed from a scenarios/*.scn file), pick sinks, and
// hand the spec to run_sweep. The tour runs a tiny 4-cell grid —
// policy x overlay size — on a thread pool and prints both the console
// tables and the JSON-lines rows the structured sink emits.
//
// Act 2 — the OverlayHost API (the front door for everything that is not
// a canned experiment): one host, three concurrent per-policy overlays on
// one shared substrate — the paper's concurrent PlanetLab agents — driven
// by the event loop, observed purely through typed subscriptions and
// immutable snapshots.
//
// The determinism contract to notice: each sweep cell (and each host)
// seeds its own substrate and policy RNGs from its own knobs, so the
// output below is identical at any --jobs level (docs/EXPERIMENTS.md).
#include <iostream>
#include <sstream>
#include <vector>

#include "exp/sweep.hpp"
#include "host/overlay_host.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

void act1_scenario_driver(std::uint64_t seed, int jobs) {
  using namespace egoist;
  std::cout << "=== Act 1: the scenario driver ===\n\n";

  // A scenario spec is an experiment name plus string knobs; "sweep."
  // keys declare grid axes (comma-separated values, cross product).
  exp::ScenarioSpec spec;
  spec.name = "tour";
  spec.experiment = "steady_state";
  spec.set("seed", std::to_string(seed));
  spec.set("k", "4");
  spec.set("warmup", "5");
  spec.set("sample", "3");
  spec.set("sweep.policy", "BR,k-Closest");
  spec.set("sweep.n", "16,24");

  std::cout << "Running " << exp::expand_grid(spec).size()
            << " cells on " << jobs << " thread(s)...\n\n";

  // Console tables to stdout, structured rows into a buffer we print at
  // the end — the same TeeSink pattern egoist_sweep uses for --jsonl.
  std::ostringstream jsonl;
  exp::ConsoleSink console(std::cout);
  exp::JsonLinesSink structured(jsonl);
  exp::TeeSink tee({&console, &structured});

  exp::SweepOptions options;
  options.jobs = jobs;
  exp::run_sweep(spec, options, tee);

  std::cout << "\nThe same results as JSON lines (what --jsonl streams):\n"
            << jsonl.str();
}

void act2_overlay_host(std::uint64_t seed) {
  using namespace egoist;
  std::cout << "\n=== Act 2: three concurrent overlays on one OverlayHost ===\n\n";

  constexpr std::size_t kNodes = 24;
  constexpr int kEpochs = 8;

  // One substrate, one clock, three policy agents — every overlay gets its
  // own identically-seeded measurement plane, so the comparison is as fair
  // as the paper's concurrent PlanetLab deployment.
  host::OverlayHost host(kNodes, seed);
  struct Agent {
    const char* label;
    overlay::Policy policy;
    host::OverlayHandle handle;
    std::vector<int> rewires;        ///< per-epoch, from on_rewire events
    std::vector<double> mean_costs;  ///< per-epoch, from epoch-end snapshots
  };
  std::vector<Agent> agents{
      {"BR", overlay::Policy::kBestResponse, {}, {}, {}},
      {"k-Random", overlay::Policy::kRandom, {}, {}, {}},
      {"HybridBR", overlay::Policy::kHybridBR, {}, {}, {}},
  };

  for (auto& agent : agents) {
    agent.handle = host.deploy(host::OverlaySpec()
                                   .policy(agent.policy)
                                   .metric(overlay::Metric::kDelayPing)
                                   .k(4)
                                   .donated_links(2)
                                   .seed(seed)
                                   .epoch_period(60.0));
    // Typed subscriptions: the host pushes engine activity out; nothing
    // here touches the mutation path.
    host.on_rewire(agent.handle, [&agent](const host::RewireEvent& event) {
      agent.rewires.resize(static_cast<std::size_t>(event.epoch), 0);
      ++agent.rewires[static_cast<std::size_t>(event.epoch - 1)];
    });
    host.on_epoch_end(agent.handle, [&host, &agent](const host::EpochEvent& event) {
      const auto snapshot = host.snapshot(event.overlay);
      agent.mean_costs.push_back(util::Summary::of(snapshot.node_costs()).mean);
    });
  }

  host.run_epochs(kEpochs);

  util::Table table({"epoch", "BR cost", "BR rw", "k-Random cost", "k-Random rw",
                     "HybridBR cost", "HybridBR rw"});
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<std::string> row{std::to_string(e + 1)};
    for (auto& agent : agents) {
      agent.rewires.resize(static_cast<std::size_t>(kEpochs), 0);
      row.push_back(util::Table::format(agent.mean_costs[static_cast<std::size_t>(e)], 1));
      row.push_back(std::to_string(agent.rewires[static_cast<std::size_t>(e)]));
    }
    table.add_row(row);
  }
  table.write_ascii(std::cout);
  std::cout << "\n(cost = mean routing delay in ms from per-epoch snapshots; "
               "rw = re-wirings\nthat epoch from on_rewire subscriptions. BR "
               "converges and goes quiet; k-Random\nnever improves; HybridBR "
               "pays two donated links for churn insurance.)\n";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace egoist;
  const util::Flags flags(argc, argv);
  const int jobs = flags.get_int("jobs", 4);
  const auto seed = flags.get_seed("seed", 42);
  flags.finish(
      "scenario_tour: drive the src/exp scenario subsystem from C++ (a "
      "4-cell policy x size grid on a thread pool), then tour the "
      "OverlayHost API with three concurrent per-policy overlays");

  act1_scenario_driver(seed, jobs);
  act2_overlay_host(seed);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
