// The scenario driver from C++ (the programmatic face of egoist_sweep).
//
// Everything the CLI does is three calls: build a ScenarioSpec (here in
// code; normally parsed from a scenarios/*.scn file), pick sinks, and
// hand the spec to run_sweep. This tour runs a tiny 4-cell grid —
// policy x overlay size — on a thread pool and prints both the console
// tables and the JSON-lines rows the structured sink emits.
//
// The determinism contract to notice: each cell seeds its own substrate
// and policy RNGs from its own knobs, so the output below is identical
// at any --jobs level (see docs/EXPERIMENTS.md).
#include <iostream>
#include <sstream>

#include "exp/sweep.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;
  const util::Flags flags(argc, argv);
  const int jobs = flags.get_int("jobs", 4);
  const auto seed = flags.get_seed("seed", 42);
  flags.finish(
      "scenario_tour: drive the src/exp scenario subsystem from C++ — a "
      "4-cell policy x size grid of steady_state cells on a thread pool");

  // A scenario spec is an experiment name plus string knobs; "sweep."
  // keys declare grid axes (comma-separated values, cross product).
  exp::ScenarioSpec spec;
  spec.name = "tour";
  spec.experiment = "steady_state";
  spec.set("seed", std::to_string(seed));
  spec.set("k", "4");
  spec.set("warmup", "5");
  spec.set("sample", "3");
  spec.set("sweep.policy", "BR,k-Closest");
  spec.set("sweep.n", "16,24");

  std::cout << "Running " << exp::expand_grid(spec).size()
            << " cells on " << jobs << " thread(s)...\n\n";

  // Console tables to stdout, structured rows into a buffer we print at
  // the end — the same TeeSink pattern egoist_sweep uses for --jsonl.
  std::ostringstream jsonl;
  exp::ConsoleSink console(std::cout);
  exp::JsonLinesSink structured(jsonl);
  exp::TeeSink tee({&console, &structured});

  exp::SweepOptions options;
  options.jobs = jobs;
  exp::run_sweep(spec, options, tee);

  std::cout << "\nThe same results as JSON lines (what --jsonl streams):\n"
            << jsonl.str();
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
